"""Thin streaming client for the sweep server: ``python -m repro submit``.

Speaks the same minimal HTTP the server does, over a plain blocking
socket — usable from scripts, the CLI, and the CI smoke without any
HTTP library.  ``stream_submit`` yields decoded events as the server
emits them; ``get_json`` fetches the one-shot endpoints
(``/metrics``, ``/cache/stats``, ``/healthz``).
"""

from __future__ import annotations

import argparse
import json
import socket
import sys
from typing import Dict, Iterator, List, Optional, Tuple
from urllib.parse import urlsplit

DEFAULT_BASE_URL = "http://127.0.0.1:8927"

#: CLI exit codes.
EXIT_OK = 0
EXIT_FAILED = 1  # job finished with ok=false, or server-side error
EXIT_CONNECT = 7  # could not reach / talk to the server


class ServerError(Exception):
    """A non-200 response from the server."""

    def __init__(self, status: int, payload: object) -> None:
        super().__init__(f"HTTP {status}: {payload}")
        self.status = status
        self.payload = payload


def _split_base_url(base_url: str) -> Tuple[str, int]:
    parts = urlsplit(base_url if "//" in base_url else f"http://{base_url}")
    if not parts.hostname:
        raise ValueError(f"invalid base URL {base_url!r}")
    return parts.hostname, parts.port or 80


def _request(
    base_url: str,
    method: str,
    path: str,
    body: Optional[bytes] = None,
    accept: Optional[str] = None,
    timeout: Optional[float] = 300.0,
) -> Tuple[int, Dict[str, str], "socket.SocketIO"]:
    """Send one request; return ``(status, headers, response-file)``."""
    host, port = _split_base_url(base_url)
    sock = socket.create_connection((host, port), timeout=timeout)
    head = [f"{method} {path} HTTP/1.1", f"Host: {host}:{port}"]
    if accept:
        head.append(f"Accept: {accept}")
    if body is not None:
        head.append("Content-Type: application/json")
        head.append(f"Content-Length: {len(body)}")
    head.append("Connection: close")
    sock.sendall("\r\n".join(head).encode() + b"\r\n\r\n" + (body or b""))
    fh = sock.makefile("rb")
    sock.close()  # the makefile keeps the connection alive

    status_line = fh.readline().decode("latin-1").strip()
    parts = status_line.split(None, 2)
    if len(parts) < 2 or not parts[0].startswith("HTTP/"):
        fh.close()
        raise ConnectionError(f"malformed status line: {status_line!r}")
    status = int(parts[1])
    headers: Dict[str, str] = {}
    while True:
        line = fh.readline()
        if line in (b"\r\n", b"\n", b""):
            break
        name, _, value = line.decode("latin-1").partition(":")
        headers[name.strip().lower()] = value.strip()
    return status, headers, fh


def get_json(base_url: str, path: str, timeout: Optional[float] = 30.0) -> object:
    """GET one of the JSON endpoints and decode the body."""
    status, headers, fh = _request(base_url, "GET", path, timeout=timeout)
    with fh:
        length = int(headers.get("content-length", "0") or "0")
        raw = fh.read(length) if length else fh.read()
    payload = json.loads(raw.decode("utf-8")) if raw else None
    if status != 200:
        raise ServerError(status, payload)
    return payload


def stream_submit(
    base_url: str,
    request: Dict[str, object],
    sse: bool = False,
    timeout: Optional[float] = None,
) -> Iterator[Dict[str, object]]:
    """POST a submit request and yield each event until ``done``.

    Raises :class:`ServerError` on rejection (400/429/503) and
    ``ConnectionError``/``OSError`` when the server is unreachable.
    """
    body = json.dumps(request, sort_keys=True).encode("utf-8")
    status, _headers, fh = _request(
        base_url,
        "POST",
        "/submit",
        body=body,
        accept="text/event-stream" if sse else "application/x-ndjson",
        timeout=timeout,
    )
    with fh:
        if status != 200:
            raw = fh.read()
            try:
                payload = json.loads(raw.decode("utf-8"))
            except (ValueError, UnicodeDecodeError):
                payload = raw.decode("utf-8", "replace")
            raise ServerError(status, payload)
        for line in fh:
            text = line.decode("utf-8").strip()
            if not text:
                continue
            if sse:
                if not text.startswith("data:"):
                    continue
                text = text[len("data:"):].strip()
            yield json.loads(text)


# ----------------------------------------------------------------------
# CLI


def _build_request(args: argparse.Namespace) -> Dict[str, object]:
    from repro.serve.protocol import canonical_experiment

    if args.target == "app":
        request: Dict[str, object] = {
            "kind": "app",
            "app": args.app,
            "mode": args.mode,
            "pages": args.pages,
            "seed": args.seed,
        }
        if args.exact:
            request["exact"] = True
    elif args.target == "fuzz":
        request = {
            "kind": "fuzz",
            "seed": args.seed,
            "max_cases": args.max_cases,
        }
    else:
        request = {
            "kind": "experiment",
            "name": canonical_experiment(args.target),
            "quick": bool(args.quick),
        }
    request["tenant"] = args.tenant
    return request


def _print_event(event: Dict[str, object], as_json: bool) -> None:
    if as_json:
        print(json.dumps(event, sort_keys=True), flush=True)
        return
    kind = event.get("event")
    if kind == "accepted":
        suffix = " (coalesced onto an in-flight job)" if event.get("coalesced") else ""
        print(f"accepted: job {event.get('job')}{suffix}", flush=True)
    elif kind == "queued":
        print(f"queued (depth {event.get('queue_depth')})", flush=True)
    elif kind == "started":
        print("started", flush=True)
    elif kind == "progress":
        state = "cache" if event.get("cached") else ("ok" if event.get("ok") else "FAIL")
        print(
            f"  [{event.get('completed')}] {event.get('task')} {state}",
            flush=True,
        )
    elif kind == "log":
        print(f"  {event.get('line')}", flush=True)
    elif kind == "result":
        rendered = event.get("rendered")
        if rendered:
            print(rendered, flush=True)
        else:
            print(
                f"result {event.get('task')}: "
                f"{event.get('error') or event.get('values')}",
                flush=True,
            )
    elif kind == "sweep":
        print(
            f"sweep: {event.get('tasks')} tasks, {event.get('hits')} cache hits, "
            f"{event.get('failed')} failed",
            flush=True,
        )
    elif kind == "error":
        print(f"error: {event.get('error')}", file=sys.stderr, flush=True)
    elif kind == "done":
        print(
            f"done: ok={event.get('ok')} wall={event.get('wall_s')}s",
            flush=True,
        )


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro submit",
        description=(
            "Submit work to a running sweep server and stream its events. "
            "TARGET is an experiment name (figure-3 / fig3 / table-4), "
            "'app' for a single task, 'fuzz' for a bounded fuzz run, or "
            "'metrics' / 'cache-stats' / 'health' to query the server."
        ),
    )
    parser.add_argument("target", metavar="TARGET")
    parser.add_argument("--base-url", default=DEFAULT_BASE_URL)
    parser.add_argument("--tenant", default="default")
    parser.add_argument("--quick", action="store_true", help="reduced sweeps")
    parser.add_argument("--app", help="app name (TARGET=app)")
    parser.add_argument("--pages", type=float, default=8.0)
    parser.add_argument("--mode", choices=("speedup", "constants"), default="speedup")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--exact", action="store_true", help="no page cap (TARGET=app)")
    parser.add_argument("--max-cases", type=int, default=50, help="TARGET=fuzz")
    parser.add_argument("--sse", action="store_true", help="request text/event-stream")
    parser.add_argument("--json", action="store_true", help="print raw event JSON")
    args = parser.parse_args(argv)

    queries = {"metrics": "/metrics", "cache-stats": "/cache/stats", "health": "/healthz"}
    try:
        if args.target in queries:
            print(json.dumps(get_json(args.base_url, queries[args.target]), indent=2))
            return EXIT_OK
        if args.target == "app" and not args.app:
            parser.error("TARGET=app requires --app NAME")
        request = _build_request(args)
        ok = False
        for event in stream_submit(args.base_url, request, sse=args.sse):
            _print_event(event, args.json)
            if event.get("event") == "done":
                ok = bool(event.get("ok"))
        return EXIT_OK if ok else EXIT_FAILED
    except ServerError as exc:
        print(f"submit: rejected: {exc}", file=sys.stderr)
        return EXIT_FAILED
    except (ConnectionError, socket.timeout, OSError) as exc:
        print(
            f"submit: cannot reach server at {args.base_url}: {exc}",
            file=sys.stderr,
        )
        return EXIT_CONNECT


if __name__ == "__main__":
    raise SystemExit(main())
