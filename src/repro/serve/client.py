"""Thin streaming client for the sweep server: ``python -m repro submit``.

Speaks the same minimal HTTP the server does, over a plain blocking
socket — usable from scripts, the CLI, and the CI smoke without any
HTTP library.  ``stream_submit`` yields decoded events as the server
emits them; ``get_json`` fetches the one-shot endpoints
(``/metrics``, ``/cache/stats``, ``/healthz``).

:func:`stream_submit_resilient` is the durable wrapper the CLI uses:
it tracks the job id and the last ``seq`` it saw, and on a dropped
connection reconnects with exponential backoff and a ``resume``
request (``after_seq`` = last seen), deduplicating by ``seq`` so the
caller observes each event exactly once even across reconnects.  429
and 503 rejections are retried after the server's ``Retry-After``
within a bounded busy budget; exhausting it raises :class:`BusyError`
(CLI exit code ``EXIT_BUSY``).

Against a sharded cluster the same wrapper follows 307 redirects to
the owning shard, falls back to its original base URL when a redirect
target dies (the survivor redirects afresh or serves the takeover),
and bounds redirect loops by the same retry budget.
"""

from __future__ import annotations

import argparse
import json
import socket
import sys
import time
from typing import Callable, Dict, Iterator, List, Optional, Tuple
from urllib.parse import urlsplit

DEFAULT_BASE_URL = "http://127.0.0.1:8927"

#: CLI exit codes.
EXIT_OK = 0
EXIT_FAILED = 1  # job finished with ok=false, or server-side error
EXIT_CONNECT = 7  # could not reach / talk to the server
EXIT_BUSY = 8  # server kept answering 429/503 past the retry budget


class ServerError(Exception):
    """A non-200 response from the server."""

    def __init__(
        self,
        status: int,
        payload: object,
        headers: Optional[Dict[str, str]] = None,
    ) -> None:
        super().__init__(f"HTTP {status}: {payload}")
        self.status = status
        self.payload = payload
        self.headers = dict(headers or {})

    def retry_after(self, default: float = 1.0) -> float:
        """The server's ``Retry-After`` delay in seconds (>= 0)."""
        try:
            value = float(self.headers.get("retry-after", default))
        except (TypeError, ValueError):
            return default
        return max(0.0, value)


class BusyError(Exception):
    """429/503 retries exhausted the busy budget; give up distinctly."""

    def __init__(self, last: ServerError, spent_s: float) -> None:
        super().__init__(
            f"server still busy after {spent_s:.1f}s of Retry-After waits: {last}"
        )
        self.last = last
        self.spent_s = spent_s


def _split_base_url(base_url: str) -> Tuple[str, int]:
    parts = urlsplit(base_url if "//" in base_url else f"http://{base_url}")
    if not parts.hostname:
        raise ValueError(f"invalid base URL {base_url!r}")
    return parts.hostname, parts.port or 80


def _base_of(location: str) -> str:
    """Reduce a redirect ``Location`` to a ``http://host:port`` base."""
    host, port = _split_base_url(location)
    return f"http://{host}:{port}"


def _request(
    base_url: str,
    method: str,
    path: str,
    body: Optional[bytes] = None,
    accept: Optional[str] = None,
    timeout: Optional[float] = 300.0,
) -> Tuple[int, Dict[str, str], "socket.SocketIO"]:
    """Send one request; return ``(status, headers, response-file)``."""
    host, port = _split_base_url(base_url)
    sock = socket.create_connection((host, port), timeout=timeout)
    head = [f"{method} {path} HTTP/1.1", f"Host: {host}:{port}"]
    if accept:
        head.append(f"Accept: {accept}")
    if body is not None:
        head.append("Content-Type: application/json")
        head.append(f"Content-Length: {len(body)}")
    head.append("Connection: close")
    sock.sendall("\r\n".join(head).encode() + b"\r\n\r\n" + (body or b""))
    fh = sock.makefile("rb")
    sock.close()  # the makefile keeps the connection alive

    status_line = fh.readline().decode("latin-1").strip()
    parts = status_line.split(None, 2)
    if len(parts) < 2 or not parts[0].startswith("HTTP/"):
        fh.close()
        raise ConnectionError(f"malformed status line: {status_line!r}")
    status = int(parts[1])
    headers: Dict[str, str] = {}
    while True:
        line = fh.readline()
        if line in (b"\r\n", b"\n", b""):
            break
        name, _, value = line.decode("latin-1").partition(":")
        headers[name.strip().lower()] = value.strip()
    return status, headers, fh


def get_json(base_url: str, path: str, timeout: Optional[float] = 30.0) -> object:
    """GET one of the JSON endpoints and decode the body."""
    status, headers, fh = _request(base_url, "GET", path, timeout=timeout)
    with fh:
        length = int(headers.get("content-length", "0") or "0")
        raw = fh.read(length) if length else fh.read()
    payload = json.loads(raw.decode("utf-8")) if raw else None
    if status != 200:
        raise ServerError(status, payload, headers)
    return payload


def stream_submit(
    base_url: str,
    request: Dict[str, object],
    sse: bool = False,
    timeout: Optional[float] = None,
) -> Iterator[Dict[str, object]]:
    """POST a submit request and yield each event until ``done``.

    Raises :class:`ServerError` on rejection (400/429/503) and
    ``ConnectionError``/``OSError`` when the server is unreachable.
    """
    body = json.dumps(request, sort_keys=True).encode("utf-8")
    status, headers, fh = _request(
        base_url,
        "POST",
        "/submit",
        body=body,
        accept="text/event-stream" if sse else "application/x-ndjson",
        timeout=timeout,
    )
    with fh:
        if status != 200:
            raw = fh.read()
            try:
                payload = json.loads(raw.decode("utf-8"))
            except (ValueError, UnicodeDecodeError):
                payload = raw.decode("utf-8", "replace")
            raise ServerError(status, payload, headers)
        for line in fh:
            text = line.decode("utf-8").strip()
            if not text:
                continue
            if sse:
                if not text.startswith("data:"):
                    continue
                text = text[len("data:"):].strip()
            yield json.loads(text)


def stream_submit_resilient(
    base_url: str,
    request: Dict[str, object],
    sse: bool = False,
    timeout: Optional[float] = None,
    reconnects: int = 5,
    backoff_s: float = 0.25,
    backoff_cap_s: float = 8.0,
    retry_budget_s: float = 60.0,
    redirect_delay_s: float = 0.05,
    sleep: Callable[[float], None] = time.sleep,
    transport: Optional[Callable[..., Iterator[Dict[str, object]]]] = None,
    log: Optional[Callable[[str], None]] = None,
) -> Iterator[Dict[str, object]]:
    """Stream a submit to completion across disconnects and busy spells.

    Yields each event exactly once (deduplicated by ``seq``, which the
    server keeps gapless per job even across a cross-shard takeover).
    On a dropped connection the stream is re-established with a
    ``resume`` request carrying the last seen ``seq``, after an
    exponential backoff (``backoff_s * 2**(attempt-1)``, capped at
    ``backoff_cap_s``); more than ``reconnects`` consecutive failed
    attempts re-raises the connection error.  429/503 rejections sleep
    the server's ``Retry-After`` and retry until ``retry_budget_s``
    cumulative waiting is exhausted, then raise :class:`BusyError`.

    **Cluster awareness**: a 307 response is followed to its
    ``Location`` shard and the request repeated there.  The first
    redirect after real data is free; each further consecutive hop
    charges ``redirect_delay_s`` against the same ``retry_budget_s``,
    so a redirect loop between confused shards terminates in
    :class:`BusyError` rather than ping-ponging forever.  When a
    connection *drops* while pointed at a redirect target (e.g. that
    shard died), the client falls back to the original ``base_url``
    and re-resolves ownership from there — the surviving shard either
    serves the resume itself (post-takeover) or redirects afresh.

    ``sleep`` and ``transport`` are injection seams (tests substitute
    a fake clock and a scripted stream); ``transport`` defaults to
    :func:`stream_submit` and is called as
    ``transport(base_url, request, sse=..., timeout=...)``.
    """
    send = transport if transport is not None else stream_submit
    notify = log if log is not None else (lambda _msg: None)
    job_id: Optional[str] = None
    if request.get("kind") == "resume" and isinstance(request.get("job"), str):
        job_id = str(request["job"])
    last_seq = int(request.get("after_seq", 0) or 0)  # type: ignore[call-overload]
    origin = base_url
    target = base_url
    attempt = 0
    redirect_hops = 0
    busy_spent = 0.0

    while True:
        if job_id is None:
            current: Dict[str, object] = dict(request)
        else:
            current = {"kind": "resume", "job": job_id, "after_seq": last_seq}
            if "tenant" in request:
                current["tenant"] = request["tenant"]
        try:
            for event in send(target, current, sse=sse, timeout=timeout):
                seq = event.get("seq")
                if isinstance(seq, int) and not isinstance(seq, bool):
                    if seq <= last_seq:
                        continue  # replayed duplicate from a reconnect
                    last_seq = seq
                if event.get("event") == "accepted" and isinstance(
                    event.get("job"), str
                ):
                    job_id = str(event["job"])
                attempt = 0  # data flowed; reset the backoff ladder
                redirect_hops = 0
                yield event
                if event.get("event") == "done":
                    return
            # Stream closed without a done event: a graceful-looking
            # disconnect is still a disconnect.
            raise ConnectionError("stream ended before the job finished")
        except ServerError as exc:
            if exc.status == 307:
                location = exc.headers.get("location")
                if not location:
                    raise
                redirect_hops += 1
                if redirect_hops > 1:
                    # A second consecutive hop means the shards disagree
                    # about ownership (e.g. mid-takeover): pace the loop
                    # and bound it by the busy budget.
                    if busy_spent + redirect_delay_s > retry_budget_s:
                        raise BusyError(exc, busy_spent) from exc
                    sleep(redirect_delay_s)
                    busy_spent += redirect_delay_s
                target = _base_of(location)
                notify(f"redirected to owning shard at {target}")
                continue
            if exc.status not in (429, 503):
                raise
            delay = exc.retry_after()
            if busy_spent + delay > retry_budget_s:
                raise BusyError(exc, busy_spent) from exc
            notify(f"server busy (HTTP {exc.status}); retrying in {delay:g}s")
            sleep(delay)
            busy_spent += delay
        except (ConnectionError, socket.timeout, OSError) as exc:
            if target != origin:
                # The redirect target died (or the takeover moved the
                # job): fall back to the origin shard and let it
                # re-resolve ownership before burning reconnects.
                notify(
                    f"connection to {target} lost ({exc}); "
                    f"falling back to {origin}"
                )
                target = origin
                redirect_hops = 0
            attempt += 1
            if attempt > reconnects:
                raise
            delay = min(backoff_s * (2 ** (attempt - 1)), backoff_cap_s)
            notify(
                f"connection lost ({exc}); reconnect {attempt}/{reconnects} "
                f"in {delay:g}s"
                + (f" (resume after seq {last_seq})" if job_id else "")
            )
            sleep(delay)


# ----------------------------------------------------------------------
# CLI


def _build_request(args: argparse.Namespace) -> Dict[str, object]:
    from repro.serve.protocol import canonical_experiment

    if args.target == "app":
        request: Dict[str, object] = {
            "kind": "app",
            "app": args.app,
            "mode": args.mode,
            "pages": args.pages,
            "seed": args.seed,
        }
        if args.exact:
            request["exact"] = True
    elif args.target == "fuzz":
        request = {
            "kind": "fuzz",
            "seed": args.seed,
            "max_cases": args.max_cases,
        }
    else:
        request = {
            "kind": "experiment",
            "name": canonical_experiment(args.target),
            "quick": bool(args.quick),
        }
    request["tenant"] = args.tenant
    return request


def _print_event(event: Dict[str, object], as_json: bool) -> None:
    if as_json:
        print(json.dumps(event, sort_keys=True), flush=True)
        return
    kind = event.get("event")
    if kind == "heartbeat":
        return  # liveness chatter; visible only with --json
    if kind == "accepted":
        if event.get("resumed"):
            suffix = f" (resumed after seq {event.get('after_seq')})"
        elif event.get("coalesced"):
            suffix = " (coalesced onto an in-flight job)"
        else:
            suffix = ""
        print(f"accepted: job {event.get('job')}{suffix}", flush=True)
    elif kind == "queued":
        print(f"queued (depth {event.get('queue_depth')})", flush=True)
    elif kind == "recovered":
        print("recovered from journal (re-running after a server restart)", flush=True)
    elif kind == "started":
        print("started", flush=True)
    elif kind == "progress":
        state = "cache" if event.get("cached") else ("ok" if event.get("ok") else "FAIL")
        print(
            f"  [{event.get('completed')}] {event.get('task')} {state}",
            flush=True,
        )
    elif kind == "log":
        print(f"  {event.get('line')}", flush=True)
    elif kind == "result":
        rendered = event.get("rendered")
        if rendered:
            print(rendered, flush=True)
        else:
            print(
                f"result {event.get('task')}: "
                f"{event.get('error') or event.get('values')}",
                flush=True,
            )
    elif kind == "sweep":
        print(
            f"sweep: {event.get('tasks')} tasks, {event.get('hits')} cache hits, "
            f"{event.get('failed')} failed",
            flush=True,
        )
    elif kind == "error":
        print(f"error: {event.get('error')}", file=sys.stderr, flush=True)
    elif kind == "done":
        print(
            f"done: ok={event.get('ok')} wall={event.get('wall_s')}s",
            flush=True,
        )


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro submit",
        description=(
            "Submit work to a running sweep server and stream its events. "
            "TARGET is an experiment name (figure-3 / fig3 / table-4), "
            "'app' for a single task, 'fuzz' for a bounded fuzz run, "
            "'job:<id>' for one job's status, or 'metrics' / "
            "'cache-stats' / 'health' to query the server.  With "
            "--resume JOB, TARGET may be omitted."
        ),
    )
    parser.add_argument("target", nargs="?", default=None, metavar="TARGET")
    parser.add_argument("--base-url", default=DEFAULT_BASE_URL)
    parser.add_argument("--tenant", default="default")
    parser.add_argument("--quick", action="store_true", help="reduced sweeps")
    parser.add_argument("--app", help="app name (TARGET=app)")
    parser.add_argument("--pages", type=float, default=8.0)
    parser.add_argument("--mode", choices=("speedup", "constants"), default="speedup")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--exact", action="store_true", help="no page cap (TARGET=app)")
    parser.add_argument("--max-cases", type=int, default=50, help="TARGET=fuzz")
    parser.add_argument("--sse", action="store_true", help="request text/event-stream")
    parser.add_argument("--json", action="store_true", help="print raw event JSON")
    parser.add_argument(
        "--resume", metavar="JOB", default=None,
        help="re-attach to a job id instead of submitting new work",
    )
    parser.add_argument(
        "--reconnects", type=int, default=5, metavar="N",
        help="reconnect-and-resume attempts after a dropped stream",
    )
    parser.add_argument(
        "--retry-budget", type=float, default=60.0, metavar="S",
        help="total Retry-After waiting tolerated on 429/503",
    )
    args = parser.parse_args(argv)

    queries = {"metrics": "/metrics", "cache-stats": "/cache/stats", "health": "/healthz"}
    if args.target is None and not args.resume:
        parser.error("TARGET is required unless --resume JOB is given")
    try:
        if args.target in queries:
            print(json.dumps(get_json(args.base_url, queries[args.target]), indent=2))
            return EXIT_OK
        if args.target and args.target.startswith("job:"):
            status = get_json(args.base_url, f"/jobs/{args.target[len('job:'):]}")
            print(json.dumps(status, indent=2))
            return EXIT_OK
        if args.resume:
            request: Dict[str, object] = {
                "kind": "resume",
                "job": args.resume,
                "after_seq": 0,
                "tenant": args.tenant,
            }
        else:
            if args.target == "app" and not args.app:
                parser.error("TARGET=app requires --app NAME")
            request = _build_request(args)
        ok = False
        for event in stream_submit_resilient(
            args.base_url,
            request,
            sse=args.sse,
            reconnects=args.reconnects,
            retry_budget_s=args.retry_budget,
            log=lambda msg: print(f"submit: {msg}", file=sys.stderr, flush=True),
        ):
            _print_event(event, args.json)
            if event.get("event") == "done":
                ok = bool(event.get("ok"))
        return EXIT_OK if ok else EXIT_FAILED
    except BusyError as exc:
        print(f"submit: giving up: {exc}", file=sys.stderr)
        return EXIT_BUSY
    except ServerError as exc:
        print(f"submit: rejected: {exc}", file=sys.stderr)
        return EXIT_FAILED
    except (ConnectionError, socket.timeout, OSError) as exc:
        print(
            f"submit: cannot reach server at {args.base_url}: {exc}",
            file=sys.stderr,
        )
        return EXIT_CONNECT


if __name__ == "__main__":
    raise SystemExit(main())
