"""Simulation-as-a-service: scheduler, server, client, smoke.

``repro.serve`` wraps the experiment harness in a long-running
multi-tenant service:

* :mod:`repro.serve.scheduler` — the reusable execution core
  (:class:`~repro.serve.scheduler.TaskScheduler`) extracted from the
  harness, plus :class:`~repro.serve.scheduler.SingleFlight` in-flight
  coalescing.  The CLI ``run_sweep`` path and the server share it.
* :mod:`repro.serve.protocol` — the HTTP/JSON-lines (and SSE) wire
  format: request parsing/validation, task construction, event framing.
* :mod:`repro.serve.server` — the asyncio front-end
  (``python -m repro serve``): weighted-fair per-tenant queueing,
  bounded backpressure, request- and task-level single-flight,
  ``/metrics`` and ``/cache/stats`` endpoints, graceful SIGTERM drain.
* :mod:`repro.serve.client` — the thin streaming client
  (``python -m repro submit``).
* :mod:`repro.serve.smoke` — the CI end-to-end smoke
  (``python -m repro.serve.smoke``).
"""

from repro.serve.scheduler import (  # noqa: F401
    SingleFlight,
    SystemClock,
    TaskScheduler,
)
