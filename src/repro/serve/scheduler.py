"""Reusable sweep scheduler: cache -> dedupe -> pool, plus single-flight.

This module is the execution core extracted from
:mod:`repro.experiments.harness`.  The harness's :func:`run_sweep`
delegates to :class:`TaskScheduler` (bit-identical results — the CLI
path is the same moved code), and the ``repro serve`` server drives the
very same component for its multi-tenant jobs, so there is exactly one
implementation of the retry/timeout/pool-isolation policy.

Pieces
------

``TaskScheduler``
    Executes :class:`~repro.experiments.harness.SweepTask` lists:
    cache lookup, duplicate folding, pooled fan-out with bounded
    retries, exponential backoff, per-task timeout preemption and
    post-break pool isolation.  Two seams make it reusable and
    deterministic to test:

    * ``clock`` — all sleeping, timing and future-waiting goes through
      a :class:`SystemClock`; tests substitute a fake clock and assert
      the retry/backoff schedule *exactly* instead of timing it.
    * ``pool_factory`` — worker pools are built through an injectable
      factory (default :class:`~concurrent.futures.ProcessPoolExecutor`),
      so scheduling decisions can be exercised without real processes.

``SingleFlight``
    A thread-safe in-flight task table keyed by the content-addressed
    cache key: the first caller of a key computes, every concurrent
    caller for the same key waits for that one computation and shares
    the result.  Installed into a sweep via
    :func:`repro.experiments.harness.coalesce_scope`, it is what lets
    the server coalesce identical work across tenants.
"""

from __future__ import annotations

import functools
import threading
import time
from concurrent.futures import Future, ProcessPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeoutError
from concurrent.futures.process import BrokenProcessPool
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Sequence

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (types only)
    from repro.experiments.harness import (
        HarnessSettings,
        ResultCache,
        SweepOutcome,
        SweepTask,
        TaskResult,
    )

#: Hard ceiling on one backoff delay (seconds), regardless of round.
MAX_BACKOFF_S = 30.0


class SystemClock:
    """Real time: the default clock behind sleeping and future waits."""

    def monotonic(self) -> float:
        return time.monotonic()

    def sleep(self, seconds: float) -> None:
        time.sleep(seconds)

    def wait_future(self, future: Future, timeout: Optional[float]):
        """Block on ``future`` for at most ``timeout`` seconds.

        Raises :class:`concurrent.futures.TimeoutError` on expiry —
        exactly :meth:`Future.result`'s contract.  Fake clocks override
        this to script timeout schedules deterministically.
        """
        return future.result(timeout=timeout)


class TaskScheduler:
    """Cache-aware, retrying executor of sweep task lists.

    One scheduler executes one policy (:class:`HarnessSettings`); it is
    cheap to construct, so the harness builds a fresh one per
    :func:`~repro.experiments.harness.run_sweep` call while the server
    keeps longer-lived ones per job.

    ``unique_executor`` is the coalescing seam: when set, the distinct
    uncached tasks of a sweep are handed to it (signature
    ``(tasks, scheduler) -> List[TaskResult]``) instead of being
    executed directly; :class:`SingleFlight` is the canonical
    implementation and calls back into :meth:`execute_distinct` for
    the tasks it actually owns.
    """

    def __init__(
        self,
        settings: "HarnessSettings",
        cache: Optional["ResultCache"] = None,
        clock: Optional[SystemClock] = None,
        pool_factory: Optional[Callable[..., ProcessPoolExecutor]] = None,
        unique_executor: Optional[Callable] = None,
        on_task_done: Optional[Callable[["TaskResult"], None]] = None,
    ) -> None:
        self.settings = settings
        self.cache = cache
        self.clock = clock if clock is not None else SystemClock()
        self.pool_factory = (
            pool_factory if pool_factory is not None else ProcessPoolExecutor
        )
        self.unique_executor = unique_executor
        self.on_task_done = on_task_done

    # ------------------------------------------------------------------
    # Sweep orchestration (cache -> dedupe -> execute -> fan back out)

    def run_sweep(self, tasks: Sequence["SweepTask"]) -> "SweepOutcome":
        """Execute ``tasks`` (cache -> pool -> in-process), in order.

        Results are positional: ``outcome[i]`` corresponds to
        ``tasks[i]``; duplicate tasks are simulated once and fanned
        back out to every position that requested them.
        """
        from repro.experiments.harness import (
            TRACE_KEY_PREFIX,
            SweepOutcome,
            SweepStats,
        )

        settings = self.settings
        cache = self.cache
        stats = SweepStats(tasks=len(tasks))

        results: List[Optional["TaskResult"]] = [None] * len(tasks)
        pending: Dict["SweepTask", List[int]] = {}
        for i, task in enumerate(tasks):
            if task in pending:  # duplicate of an already-pending task
                pending[task].append(i)
                continue
            hit = cache.load(task) if cache is not None else None
            if hit is not None and settings.trace_summary and not any(
                k.startswith(TRACE_KEY_PREFIX) for k in hit.values
            ):
                # Cached before trace summaries were requested: recompute
                # so the entry gains its trace.* digest.
                hit = None
            if hit is not None:
                stats.hits += 1
                results[i] = hit
                self._notify(hit)
            else:
                pending[task] = [i]

        unique = list(pending)
        stats.unique = len(unique) + stats.hits
        stats.misses = len(unique)
        if unique:
            computed = self.execute_unique(unique)
            for task, result in zip(unique, computed):
                stats.sim_wall_s += result.wall_s
                stats.retried += result.attempts - 1
                if result.error is not None:
                    stats.failed += 1
                if cache is not None:
                    cache.store(result)  # no-op for failed results
                self._notify(result)
                for i in pending[task]:
                    results[i] = result

        assert all(r is not None for r in results)
        return SweepOutcome(results=results, stats=stats, settings=settings)  # type: ignore[arg-type]

    def execute_unique(self, tasks: List["SweepTask"]) -> List["TaskResult"]:
        """Execute distinct, uncached tasks (through the coalescer if set)."""
        if not tasks:
            return []
        if self.unique_executor is not None:
            return self.unique_executor(tasks, self)
        return self.execute_distinct(tasks)

    def execute_distinct(self, tasks: List["SweepTask"]) -> List["TaskResult"]:
        """Pooled or serial execution of distinct tasks, input order."""
        if self.settings.jobs > 1 and len(tasks) > 1:
            return self._run_pooled(tasks)
        return [self._execute_with_retry(task) for task in tasks]

    def _notify(self, result: "TaskResult") -> None:
        """Report one finished task to the progress callback (if any).

        A broken observer must never fail the sweep, so callback
        exceptions are swallowed.
        """
        if self.on_task_done is None:
            return
        try:
            self.on_task_done(result)
        except Exception:  # noqa: BLE001 - observer must not break sweeps
            pass

    # ------------------------------------------------------------------
    # Retry / backoff / pool machinery (moved from harness)

    def _backoff_sleep(self, round_index: int) -> None:
        """Exponential backoff between retry rounds (base * 2^round)."""
        delay = self.settings.retry_backoff_s * (2**round_index)
        if delay > 0:
            self.clock.sleep(min(delay, MAX_BACKOFF_S))

    def _execute_with_retry(self, task: "SweepTask") -> "TaskResult":
        """In-process execution with bounded retry on raising tasks.

        Serial execution cannot preempt a hung or crashed *process*
        (the task runs in this one); those failure modes are covered by
        the pooled path.  What it can survive is a task that raises.
        """
        from repro.experiments.harness import TaskResult, _timed_execute

        settings = self.settings
        last_error = "unknown"
        for attempt in range(settings.retries + 1):
            if attempt:
                self._backoff_sleep(attempt - 1)
            try:
                result = _timed_execute(
                    task, trace_summary=settings.trace_summary
                )
                result.attempts = attempt + 1
                return result
            except KeyboardInterrupt:
                raise
            except Exception as exc:  # noqa: BLE001 - captured per task
                last_error = f"{type(exc).__name__}: {exc}"
        return TaskResult(
            task=task,
            values={},
            wall_s=0.0,
            attempts=settings.retries + 1,
            error=last_error,
        )

    @staticmethod
    def _terminate_workers(executor) -> None:
        """Forcefully end a pool's worker processes (hung-worker cleanup).

        ``ProcessPoolExecutor`` has no public kill switch; terminating
        the worker ``Process`` objects directly is the only way to
        reclaim a worker stuck in an unbounded simulation without
        blocking interpreter shutdown on its (non-daemon) process join.
        """
        processes = getattr(executor, "_processes", None) or {}
        for proc in list(processes.values()):
            try:
                proc.terminate()
            except Exception:  # noqa: BLE001 - best-effort cleanup
                pass

    def _run_pooled(self, tasks: List["SweepTask"]) -> List["TaskResult"]:
        """Fan distinct tasks out across worker processes, in input order.

        Resilience contract (exercised by the chaos tests):

        * a task that **raises** is captured as that task's failure,
          not a sweep abort;
        * a **killed** worker (OOM, segfault, chaos ``crash``) breaks
          the pool — every task still in flight is retried; because
          which task killed the pool is unknowable from the outside,
          later rounds run each task in its *own* single-worker pool,
          so a persistent crasher exhausts only its own attempt budget
          and innocent bystanders complete;
        * a **hung** worker trips ``task_timeout_s``; the stuck process
          is terminated and the task retried;
        * retry rounds back off exponentially and give up after
          ``settings.retries`` extra attempts, recording the last error.
        """
        from repro.experiments.harness import TaskResult, _pool_entry

        settings = self.settings
        entry = functools.partial(
            _pool_entry, trace_summary=settings.trace_summary
        )
        results: Dict[int, "TaskResult"] = {}
        attempts: Dict[int, int] = {i: 0 for i in range(len(tasks))}
        last_error: Dict[int, str] = {}
        remaining = list(range(len(tasks)))
        isolate = False  # after a pool break: one single-worker pool per task

        round_index = 0
        while remaining:
            if round_index:
                self._backoff_sleep(round_index - 1)
            retry: List[int] = []
            broke = False
            if isolate:
                # Crash attribution: each task gets a private pool (still
                # at most ``jobs`` worker processes alive at once).
                batches = [
                    remaining[k : k + settings.jobs]
                    for k in range(0, len(remaining), settings.jobs)
                ]
            else:
                batches = [remaining]
            for batch in batches:
                if isolate:
                    executors = {
                        i: self.pool_factory(max_workers=1) for i in batch
                    }
                else:
                    shared = self.pool_factory(
                        max_workers=min(settings.jobs, len(batch))
                    )
                    executors = {i: shared for i in batch}
                futures = {
                    i: executors[i].submit(entry, tasks[i]) for i in batch
                }
                hung = set()
                for i in batch:
                    attempts[i] += 1
                    try:
                        values, wall_s = self.clock.wait_future(
                            futures[i], settings.task_timeout_s
                        )
                    except FutureTimeoutError:
                        futures[i].cancel()
                        hung.add(executors[i])
                        last_error[i] = (
                            f"timed out after {settings.task_timeout_s:g}s"
                        )
                        retry.append(i)
                    except BrokenProcessPool:
                        # A worker died (crash/kill/OOM); every future on
                        # its pool is lost and must be retried.
                        broke = True
                        last_error[i] = "worker process died (broken pool)"
                        retry.append(i)
                    except KeyboardInterrupt:
                        for ex in set(executors.values()):
                            self._terminate_workers(ex)
                            ex.shutdown(wait=False, cancel_futures=True)
                        raise
                    except Exception as exc:  # noqa: BLE001 - captured per task
                        last_error[i] = f"{type(exc).__name__}: {exc}"
                        retry.append(i)
                    else:
                        results[i] = TaskResult(
                            task=tasks[i],
                            values=values,
                            wall_s=wall_s,
                            attempts=attempts[i],
                        )
                for ex in set(executors.values()):
                    if ex in hung:
                        # A hung worker never returns; joining it would
                        # hang the sweep (and interpreter exit) right
                        # behind it.
                        self._terminate_workers(ex)
                        ex.shutdown(wait=False, cancel_futures=True)
                    else:
                        ex.shutdown(wait=True, cancel_futures=True)
            if broke:
                isolate = True

            remaining = []
            for i in retry:
                if attempts[i] > settings.retries:
                    results[i] = TaskResult(
                        task=tasks[i],
                        values={},
                        wall_s=0.0,
                        attempts=attempts[i],
                        error=last_error.get(i, "unknown"),
                    )
                else:
                    remaining.append(i)
            round_index += 1

        return [results[i] for i in range(len(tasks))]


# ----------------------------------------------------------------------
# Single-flight coalescing


class _Flight:
    """One in-flight computation: an event plus its eventual result."""

    __slots__ = ("event", "result")

    def __init__(self) -> None:
        self.event = threading.Event()
        self.result: Optional["TaskResult"] = None


class SingleFlight:
    """Per-key single-flight table: one computation, many waiters.

    Keys are the content-addressed :meth:`SweepTask.key` — the same
    identity the on-disk cache uses, so coalescing composes with the
    cache: ``run_sweep`` consults the cache first, and only genuinely
    uncached work reaches this table.  The first sweep to register a
    key computes it (through its scheduler's normal pooled/serial
    path); every concurrent sweep asking for the same key blocks on the
    flight's event and shares the one result.

    Thread-safe; intended to be shared across the server's worker
    threads via :func:`repro.experiments.harness.coalesce_scope`.

    ``metrics`` is an optional namespace-like object (``.counter(name)``
    with ``.add()``) receiving ``computed`` / ``coalesce_hits``
    counters; increments happen under the table lock, so the counts
    are exact even under contention.
    """

    def __init__(self, metrics=None, wait_timeout_s: Optional[float] = None) -> None:
        self._lock = threading.Lock()
        self._inflight: Dict[str, _Flight] = {}
        self.metrics = metrics
        #: safety valve for waiters (None = wait as long as it takes;
        #: publishers always publish, even on abort, via ``finally``).
        self.wait_timeout_s = wait_timeout_s

    def _count(self, name: str, amount: float = 1.0) -> None:
        if self.metrics is not None:
            self.metrics.counter(name).add(amount)

    def inflight_keys(self) -> List[str]:
        with self._lock:
            return sorted(self._inflight)

    def __call__(
        self, tasks: List["SweepTask"], scheduler: TaskScheduler
    ) -> List["TaskResult"]:
        """``unique_executor`` entry point: coalesce, compute, wait.

        ``tasks`` are the distinct uncached tasks of one sweep.  Keys
        not in flight are claimed and computed by *this* call via
        ``scheduler.execute_distinct``; keys already in flight are
        waited on.  Ordering of the returned results matches ``tasks``.
        """
        from repro.experiments.harness import TaskResult

        fresh: List["SweepTask"] = []
        flights: List[_Flight] = []
        waiting: Dict[str, _Flight] = {}
        with self._lock:
            for task in tasks:
                key = task.key()
                flight = self._inflight.get(key)
                if flight is None:
                    flight = self._inflight[key] = _Flight()
                    fresh.append(task)
                    flights.append(flight)
                    self._count("computed")
                else:
                    waiting[key] = flight
                    self._count("coalesce_hits")

        computed: Optional[List["TaskResult"]] = None
        try:
            if fresh:
                computed = scheduler.execute_distinct(fresh)
        finally:
            # Publish under all circumstances — a waiter blocked on a
            # flight whose computation aborted must still wake up.
            with self._lock:
                for idx, (task, flight) in enumerate(zip(fresh, flights)):
                    if computed is not None:
                        flight.result = computed[idx]
                    else:
                        flight.result = TaskResult(
                            task=task,
                            values={},
                            wall_s=0.0,
                            error="computation aborted before completing",
                        )
                    del self._inflight[task.key()]
                    flight.event.set()

        results: List["TaskResult"] = []
        fresh_by_key = {t.key(): r for t, r in zip(fresh, computed or [])}
        for task in tasks:
            key = task.key()
            if key in fresh_by_key:
                results.append(fresh_by_key[key])
                continue
            flight = waiting[key]
            if not flight.event.wait(timeout=self.wait_timeout_s):
                results.append(
                    TaskResult(
                        task=task,
                        values={},
                        wall_s=0.0,
                        error=(
                            "timed out waiting for a coalesced computation "
                            f"({self.wait_timeout_s:g}s)"
                        ),
                    )
                )
                continue
            assert flight.result is not None
            results.append(flight.result)
        return results
