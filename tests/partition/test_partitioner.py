"""Tests for the automatic partitioning compiler (Section 10)."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.partition.estimator import PartitionEstimator, Placement
from repro.partition.kernel import Kernel, OpClass, Stage
from repro.partition.library import TABLE2_EXPECTATIONS, matrix_kernel, median_kernel
from repro.partition.partitioner import (
    annealed_partition,
    exhaustive_partition,
    greedy_partition,
)


def tiny_kernel(**overrides) -> Kernel:
    defaults = dict(
        name="tiny",
        n_pages=8,
        stages=[
            Stage("produce", OpClass.DATA, elements=100_000, ops_per_element=4.0,
                  stream_bytes=4.0, logic_cycles_per_element=1.0, le_cost=100),
            Stage("consume", OpClass.FP, elements=1_000, ops_per_element=8.0,
                  bytes_in={"produce": 8.0}, le_cost=100),
        ],
    )
    defaults.update(overrides)
    return Kernel(**defaults)


class TestKernelIR:
    def test_duplicate_stage_names_rejected(self):
        with pytest.raises(ValueError):
            Kernel("k", [Stage("a", OpClass.INT, 1, 1.0), Stage("a", OpClass.INT, 1, 1.0)])

    def test_unknown_dependency_rejected(self):
        with pytest.raises(ValueError):
            Kernel("k", [Stage("a", OpClass.INT, 1, 1.0, bytes_in={"ghost": 1.0})])

    def test_topological_order_required(self):
        with pytest.raises(ValueError):
            Kernel(
                "k",
                [
                    Stage("late", OpClass.INT, 1, 1.0, bytes_in={"early": 1.0}),
                    Stage("early", OpClass.INT, 1, 1.0),
                ],
            )


class TestEstimator:
    def test_all_processor_is_always_feasible(self):
        est = PartitionEstimator(tiny_kernel())
        assert math.isfinite(est.estimate(est.all_processor()))

    def test_le_budget_makes_assignment_infeasible(self):
        kernel = tiny_kernel(
            stages=[
                Stage("a", OpClass.DATA, 1000, 1.0, le_cost=200),
                Stage("b", OpClass.DATA, 1000, 1.0, le_cost=200),
            ]
        )
        est = PartitionEstimator(kernel)
        both_on_pages = {"a": Placement.PAGES, "b": Placement.PAGES}
        assert est.estimate(both_on_pages) == math.inf
        one = {"a": Placement.PAGES, "b": Placement.PROCESSOR}
        assert math.isfinite(est.estimate(one))

    def test_pinned_stage_cannot_move(self):
        kernel = tiny_kernel(
            stages=[Stage("io", OpClass.CONTROL, 10, 1.0, pinned_to_processor=True)]
        )
        est = PartitionEstimator(kernel)
        assert est.estimate({"io": Placement.PAGES}) == math.inf

    def test_fp_penalty_keeps_fp_off_pages(self):
        kernel = tiny_kernel()
        est = PartitionEstimator(kernel)
        fp_on_pages = {"produce": Placement.PAGES, "consume": Placement.PAGES}
        fp_on_cpu = {"produce": Placement.PAGES, "consume": Placement.PROCESSOR}
        assert est.estimate(fp_on_cpu) < est.estimate(fp_on_pages)

    def test_boundary_traffic_priced(self):
        kernel = tiny_kernel()
        est = PartitionEstimator(kernel)
        split = {"produce": Placement.PAGES, "consume": Placement.PROCESSOR}
        breakdown = est.breakdown(split)
        assert breakdown["consume"].boundary_bytes == 8.0 * 1_000
        together = est.all_processor()
        assert est.breakdown(together)["consume"].boundary_bytes == 0.0

    def test_incomplete_assignment_rejected(self):
        est = PartitionEstimator(tiny_kernel())
        with pytest.raises(ValueError):
            est.estimate({"produce": Placement.PAGES})


class TestSearch:
    @pytest.mark.parametrize("name", sorted(TABLE2_EXPECTATIONS))
    def test_exhaustive_recovers_table2(self, name):
        factory, expected = TABLE2_EXPECTATIONS[name]
        partition = exhaustive_partition(factory())
        assert partition.page_stages == expected

    @pytest.mark.parametrize("name", sorted(TABLE2_EXPECTATIONS))
    def test_greedy_matches_exhaustive_on_app_kernels(self, name):
        factory, _ = TABLE2_EXPECTATIONS[name]
        kernel = factory()
        est = PartitionEstimator(kernel)
        greedy = greedy_partition(kernel, est)
        optimal = exhaustive_partition(kernel, est)
        assert greedy.estimated_ns == pytest.approx(optimal.estimated_ns)

    @pytest.mark.parametrize("name", sorted(TABLE2_EXPECTATIONS))
    def test_annealing_matches_exhaustive_on_app_kernels(self, name):
        factory, _ = TABLE2_EXPECTATIONS[name]
        kernel = factory()
        est = PartitionEstimator(kernel)
        annealed = annealed_partition(kernel, est, seed=1)
        optimal = exhaustive_partition(kernel, est)
        assert annealed.estimated_ns == pytest.approx(optimal.estimated_ns, rel=0.01)

    def test_partitioned_kernels_beat_all_processor(self):
        for name, (factory, _) in TABLE2_EXPECTATIONS.items():
            kernel = factory()
            est = PartitionEstimator(kernel)
            partition = exhaustive_partition(kernel, est)
            assert partition.speedup_over_all_processor(est) > 1.5, name

    def test_annealing_deterministic_per_seed(self):
        kernel = matrix_kernel()
        a = annealed_partition(kernel, seed=7)
        b = annealed_partition(kernel, seed=7)
        assert a.assignment == b.assignment

    def test_exhaustive_guards_against_explosion(self):
        stages = [Stage(f"s{i}", OpClass.INT, 10, 1.0) for i in range(21)]
        with pytest.raises(ValueError):
            exhaustive_partition(Kernel("big", stages))

    @given(
        elements=st.integers(min_value=1000, max_value=10_000_000),
        ops=st.floats(min_value=0.5, max_value=50.0),
    )
    @settings(max_examples=30, deadline=None)
    def test_heuristics_never_beat_the_oracle(self, elements, ops):
        kernel = tiny_kernel(
            stages=[
                Stage("produce", OpClass.DATA, elements, ops,
                      stream_bytes=4.0, le_cost=100),
                Stage("consume", OpClass.FP, max(1, elements // 100), 8.0,
                      bytes_in={"produce": 8.0}, le_cost=100),
            ]
        )
        est = PartitionEstimator(kernel)
        optimal = exhaustive_partition(kernel, est).estimated_ns
        assert greedy_partition(kernel, est).estimated_ns >= optimal - 1e-6
        assert annealed_partition(kernel, est, steps=400).estimated_ns >= optimal - 1e-6

    def test_more_pages_shift_partition_toward_memory(self):
        # With one page there is no parallelism to win; with many, the
        # data stage belongs in memory.
        kernel_small = median_kernel(n_pages=1)
        kernel_large = median_kernel(n_pages=64)
        small = exhaustive_partition(kernel_small)
        large = exhaustive_partition(kernel_large)
        est_small = PartitionEstimator(kernel_small)
        est_large = PartitionEstimator(kernel_large)
        assert large.speedup_over_all_processor(
            est_large
        ) > small.speedup_over_all_processor(est_small)
