"""Unit + property tests for DCT, zigzag/RLE and Huffman stages."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.mpeg import dct as D
from repro.mpeg import huffman as H
from repro.mpeg import rle as R

blocks8 = arrays(np.float64, (4, 8, 8), elements=st.floats(-1000, 1000, width=16))
int_blocks = arrays(np.int16, (3, 8, 8), elements=st.integers(-300, 300))


class TestDCT:
    def test_dct_idct_roundtrip(self):
        rng = np.random.default_rng(0)
        blocks = rng.standard_normal((10, 8, 8)) * 100
        assert np.allclose(D.idct2(D.dct2(blocks)), blocks, atol=1e-9)

    def test_dc_coefficient_is_scaled_mean(self):
        block = np.full((8, 8), 16.0)
        coeffs = D.dct2(block)
        assert coeffs[0, 0] == pytest.approx(16.0 * 8)
        assert np.allclose(coeffs.ravel()[1:], 0.0, atol=1e-9)

    def test_dct_is_orthonormal(self):
        rng = np.random.default_rng(1)
        block = rng.standard_normal((8, 8))
        assert np.sum(block**2) == pytest.approx(np.sum(D.dct2(block) ** 2))

    @given(blocks=blocks8)
    @settings(max_examples=30, deadline=None)
    def test_roundtrip_property(self, blocks):
        assert np.allclose(D.idct2(D.dct2(blocks)), blocks, atol=1e-6)

    def test_blockize_roundtrip(self):
        rng = np.random.default_rng(2)
        image = rng.integers(0, 100, (24, 32)).astype(np.float64)
        blocks = D.blockize(image)
        assert blocks.shape == (12, 8, 8)
        assert np.array_equal(D.unblockize(blocks, 24, 32), image)

    def test_blockize_rejects_unaligned(self):
        with pytest.raises(ValueError):
            D.blockize(np.zeros((10, 16)))

    def test_quantization_shrinks_high_frequencies_harder(self):
        coeffs = np.full((8, 8), 100.0)
        levels = D.quantize(coeffs)
        assert levels[0, 0] > levels[7, 7]

    def test_quantize_dequantize_bounded_error(self):
        rng = np.random.default_rng(3)
        coeffs = rng.standard_normal((5, 8, 8)) * 200
        err = np.abs(D.dequantize(D.quantize(coeffs)) - coeffs)
        assert np.all(err <= D.DEFAULT_QUANT / 2 + 1e-9)


class TestZigzagRLE:
    def test_zigzag_starts_with_dc_and_low_frequencies(self):
        block = np.arange(64).reshape(8, 8)
        scan = R.zigzag(block)
        assert scan[0] == 0  # (0,0)
        assert set(scan[:3]) == {0, 1, 8}  # (0,0), (0,1), (1,0)

    def test_zigzag_roundtrip(self):
        block = np.arange(64).reshape(8, 8)
        assert np.array_equal(R.unzigzag(R.zigzag(block)), block)

    def test_all_zero_block_is_one_symbol(self):
        assert R.rle_encode_block(np.zeros((8, 8), dtype=np.int16)) == [R.EOB]

    def test_single_dc_block(self):
        block = np.zeros((8, 8), dtype=np.int16)
        block[0, 0] = 5
        assert R.rle_encode_block(block) == [(0, 5), R.EOB]

    def test_runs_counted(self):
        block = np.zeros((8, 8), dtype=np.int16)
        block[0, 0] = 1
        scan = np.zeros(64, dtype=np.int16)
        scan[0] = 1
        scan[5] = -3
        block = R.unzigzag(scan)
        assert R.rle_encode_block(block) == [(0, 1), (4, -3), R.EOB]

    @given(blocks=int_blocks)
    @settings(max_examples=50, deadline=None)
    def test_rle_roundtrip(self, blocks):
        assert np.array_equal(R.rle_decode(R.rle_encode(blocks)), blocks)

    def test_overrun_rejected(self):
        with pytest.raises(ValueError):
            R.rle_decode_block([(63, 1), (5, 2), R.EOB])


class TestHuffman:
    def test_roundtrip_simple(self):
        symbols = [(0, 1)] * 10 + [(1, -2)] * 5 + [R.EOB] * 3
        table = H.HuffmanTable.from_symbols(symbols)
        payload, n_bits = H.encode_symbols(symbols, table)
        assert H.decode_symbols(payload, n_bits, len(symbols), table) == symbols

    def test_frequent_symbols_get_short_codes(self):
        symbols = [(0, 1)] * 100 + [(2, 9)] * 1
        table = H.HuffmanTable.from_symbols(symbols)
        assert table.codes[(0, 1)][1] <= table.codes[(2, 9)][1]

    def test_single_symbol_alphabet(self):
        symbols = [R.EOB] * 4
        table = H.HuffmanTable.from_symbols(symbols)
        payload, n_bits = H.encode_symbols(symbols, table)
        assert H.decode_symbols(payload, n_bits, 4, table) == symbols

    def test_compression_beats_fixed_width_on_skewed_input(self):
        rng = np.random.default_rng(0)
        symbols = [(0, 1)] * 900 + [(int(r), int(l)) for r, l in
                   rng.integers(0, 8, (100, 2))]
        table = H.HuffmanTable.from_symbols(symbols)
        _, n_bits = H.encode_symbols(symbols, table)
        distinct = len({s for s in symbols})
        fixed_bits = len(symbols) * max(1, int(np.ceil(np.log2(distinct))))
        assert n_bits < fixed_bits

    @given(
        data=st.lists(
            st.tuples(st.integers(0, 15), st.integers(-64, 64)),
            min_size=1,
            max_size=300,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_roundtrip_property(self, data):
        table = H.HuffmanTable.from_symbols(data)
        payload, n_bits = H.encode_symbols(data, table)
        assert H.decode_symbols(payload, n_bits, len(data), table) == data

    def test_canonical_codes_are_prefix_free(self):
        symbols = [(i % 5, i % 7 - 3) for i in range(200)]
        table = H.HuffmanTable.from_symbols(symbols)
        codes = [
            format(code, f"0{length}b")
            for code, length in table.codes.values()
        ]
        for a in codes:
            for b in codes:
                if a != b:
                    assert not b.startswith(a)
