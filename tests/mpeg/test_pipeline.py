"""Integration tests for motion estimation and the full P-frame codec."""

import numpy as np
import pytest

from repro.mpeg import motion as M
from repro.mpeg.pipeline import MpegPipeline
from repro.radram.config import RADramConfig


def make_frames(h=48, w=64, shift=(2, -3), seed=0):
    """A reference frame and a shifted 'current' frame."""
    rng = np.random.default_rng(seed)
    big = rng.integers(0, 1024, (h + 32, w + 32), dtype=np.int16)
    # Smooth it so motion search has texture but not pure noise.
    big = (big + np.roll(big, 1, 0) + np.roll(big, 1, 1) + np.roll(big, 2, 0)) // 4
    ref = big[16 : 16 + h, 16 : 16 + w].copy()
    cur = big[16 + shift[0] : 16 + shift[0] + h, 16 + shift[1] : 16 + shift[1] + w].copy()
    return cur.astype(np.int16), ref.astype(np.int16)


class TestMotion:
    def test_finds_global_shift(self):
        cur, ref = make_frames(shift=(2, -3))
        vectors = M.estimate_motion(cur, ref, search=4)
        # Interior macroblocks should find the (2, -3) displacement.
        interior = [v for row in vectors[1:-1] for v in row[1:-1]]
        hits = sum(1 for v in interior if (v.dy, v.dx) == (2, -3))
        assert hits >= 0.8 * len(interior)

    def test_zero_motion_for_identical_frames(self):
        cur, ref = make_frames(shift=(0, 0))
        vectors = M.estimate_motion(cur, ref, search=3)
        assert all(v == M.MotionVector(0, 0) for row in vectors for v in row)

    def test_compensation_reverses_estimation(self):
        cur, ref = make_frames(shift=(1, 2))
        vectors = M.estimate_motion(cur, ref, search=3)
        prediction = M.compensate(ref, vectors)
        assert M.sad(cur, prediction) < M.sad(cur, ref)

    def test_residual_plus_prediction_reconstructs(self):
        cur, ref = make_frames()
        vectors = M.estimate_motion(cur, ref, search=3)
        prediction = M.compensate(ref, vectors)
        resid = M.residual(cur, prediction)
        assert np.array_equal(M.reconstruct(prediction, resid), cur)

    def test_unaligned_frame_rejected(self):
        with pytest.raises(ValueError):
            M.estimate_motion(np.zeros((20, 32)), np.zeros((20, 32)))


class TestCodec:
    def test_lossless_at_fine_quantization(self):
        # At scale 0.0005 the worst-case coefficient error (q/2 per
        # coefficient, Frobenius-bounded through the orthonormal IDCT)
        # stays below half a pixel, so round() reconstructs exactly.
        cur, ref = make_frames()
        codec = MpegPipeline(quant_scale=0.0005, search=3)
        frame = codec.encode(cur, ref)
        decoded = codec.decode(frame, ref)
        assert np.array_equal(decoded, cur)

    def test_lossy_reconstruction_bounded_by_quantization(self):
        cur, ref = make_frames()
        codec = MpegPipeline(quant_scale=1.0, search=3)
        decoded = codec.decode(codec.encode(cur, ref), ref)
        err = np.abs(decoded.astype(np.int32) - cur.astype(np.int32))
        assert float(np.mean(err)) < 30.0
        assert float(np.max(err)) < 400.0

    def test_compression_achieved(self):
        cur, ref = make_frames()
        codec = MpegPipeline(quant_scale=2.0, search=3)
        frame = codec.encode(cur, ref)
        assert frame.compression_ratio() > 2.0

    def test_coarser_quantization_compresses_more(self):
        cur, ref = make_frames()
        fine = MpegPipeline(quant_scale=0.5, search=3).encode(cur, ref)
        coarse = MpegPipeline(quant_scale=4.0, search=3).encode(cur, ref)
        assert coarse.compressed_bytes < fine.compressed_bytes

    def test_decode_needs_matching_reference(self):
        cur, ref = make_frames()
        codec = MpegPipeline(quant_scale=0.0005, search=3)
        frame = codec.encode(cur, ref)
        wrong_ref = np.roll(ref, 5, axis=0)
        assert not np.array_equal(codec.decode(frame, wrong_ref), cur)


class TestTimedPipeline:
    def test_radram_encoder_beats_conventional(self):
        cur, ref = make_frames(h=64, w=64)
        codec = MpegPipeline(quant_scale=1.0, search=3)
        cfg = RADramConfig.reference().with_page_bytes(8 * 1024)
        _, conv = codec.encode_timed(cur, ref, system="conventional")
        _, rad = codec.encode_timed(cur, ref, system="radram", radram_config=cfg)
        assert conv.total_ns > rad.total_ns

    def test_motion_search_dominates_conventional_encode(self):
        cur, ref = make_frames(h=64, w=64)
        codec = MpegPipeline(quant_scale=1.0, search=3)
        _, conv = codec.encode_timed(cur, ref, system="conventional")
        from repro.mpeg.motion import sad_operations

        sad_ns = 1.5 * sad_operations(64, 64, 3) / 2
        assert sad_ns > 0.4 * conv.compute_ns

    def test_timed_encode_returns_same_functional_frame(self):
        cur, ref = make_frames()
        codec = MpegPipeline(quant_scale=1.0, search=3)
        frame_a, _ = codec.encode_timed(cur, ref, system="conventional")
        frame_b = codec.encode(cur, ref)
        assert frame_a.payload == frame_b.payload

    def test_unknown_system_rejected(self):
        cur, ref = make_frames()
        with pytest.raises(ValueError):
            MpegPipeline().encode_timed(cur, ref, system="vax")
