"""Tests for the STL array template (both backends)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.radram.config import RADramConfig
from repro.stl.array import APArray, _shuffle_permutation
from repro.stl.operations import OPERATION_CIRCUITS

SMALL = RADramConfig.reference().with_page_bytes(8 * 1024)


def make_pair(capacity_pages=3, fill=1000, seed=0):
    rng = np.random.default_rng(seed)
    values = rng.integers(0, 1 << 16, fill, dtype=np.uint32)
    arrays = []
    for backend in ("conventional", "radram"):
        a = APArray(capacity_pages=capacity_pages, backend=backend, radram_config=SMALL)
        a.extend(values)
        arrays.append(a)
    return arrays[0], arrays[1], values


class TestBasics:
    def test_extend_and_len(self):
        conv, rad, values = make_pair()
        assert len(conv) == len(rad) == len(values)
        assert np.array_equal(conv.to_numpy(), rad.to_numpy())

    def test_getitem(self):
        conv, rad, values = make_pair()
        assert conv[7] == rad[7] == int(values[7])

    def test_capacity_enforced(self):
        a = APArray(capacity_pages=1, backend="radram", radram_config=SMALL)
        with pytest.raises(ValueError):
            a.extend(range(100000))

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError):
            APArray(backend="quantum")

    def test_position_bounds_checked(self):
        conv, rad, _ = make_pair()
        with pytest.raises(IndexError):
            rad.insert(len(rad) + 1, 0)
        with pytest.raises(IndexError):
            rad.delete(len(rad))


class TestOperationEquivalence:
    """Both backends produce identical results for every operation."""

    def test_insert(self):
        conv, rad, _ = make_pair()
        for a in (conv, rad):
            a.insert(100, 0xABCD)
            a.insert(0, 7)
        assert np.array_equal(conv.to_numpy(), rad.to_numpy())
        assert rad[0] == 7 and rad[101] == 0xABCD

    def test_delete(self):
        conv, rad, values = make_pair()
        for a in (conv, rad):
            a.delete(50)
        assert np.array_equal(conv.to_numpy(), rad.to_numpy())
        assert len(rad) == len(values) - 1
        assert rad[50] == int(values[51])

    def test_count(self):
        conv, rad, values = make_pair()
        needle = int(values[13])
        assert conv.count(needle) == rad.count(needle) >= 1

    def test_accumulate(self):
        conv, rad, values = make_pair()
        expected = int(np.sum(values, dtype=np.uint32))
        assert conv.accumulate() == rad.accumulate() == expected

    def test_partial_sum(self):
        conv, rad, values = make_pair()
        for a in (conv, rad):
            a.partial_sum()
        expected = np.cumsum(values, dtype=np.uint32)
        assert np.array_equal(conv.to_numpy(), expected)
        assert np.array_equal(rad.to_numpy(), expected)

    def test_rotate(self):
        conv, rad, values = make_pair()
        for a in (conv, rad):
            a.rotate(137)
        expected = np.roll(values, -137)
        assert np.array_equal(conv.to_numpy(), expected)
        assert np.array_equal(rad.to_numpy(), expected)

    def test_adjacent_difference(self):
        conv, rad, values = make_pair()
        for a in (conv, rad):
            a.adjacent_difference()
        expected = values.copy()
        expected[1:] = np.diff(values)
        assert np.array_equal(conv.to_numpy(), expected)
        assert np.array_equal(rad.to_numpy(), expected)

    def test_random_shuffle_identical_and_a_permutation(self):
        conv, rad, values = make_pair()
        for a in (conv, rad):
            a.random_shuffle(seed=3)
        assert np.array_equal(conv.to_numpy(), rad.to_numpy())
        assert sorted(conv.to_numpy()) == sorted(values)
        assert not np.array_equal(conv.to_numpy(), values)

    @given(
        ops=st.lists(
            st.sampled_from(["insert", "delete", "rotate", "partial_sum"]),
            min_size=1,
            max_size=5,
        ),
        seed=st.integers(0, 10),
    )
    @settings(max_examples=15, deadline=None)
    def test_operation_sequences_stay_equivalent(self, ops, seed):
        conv, rad, _ = make_pair(fill=300, seed=seed)
        rng = np.random.default_rng(seed)
        for op in ops:
            if op == "insert":
                pos, val = int(rng.integers(0, len(conv))), int(rng.integers(0, 99))
                conv.insert(pos, val)
                rad.insert(pos, val)
            elif op == "delete" and len(conv) > 1:
                pos = int(rng.integers(0, len(conv) - 1))
                conv.delete(pos)
                rad.delete(pos)
            elif op == "rotate":
                k = int(rng.integers(0, len(conv)))
                conv.rotate(k)
                rad.rotate(k)
            else:
                conv.partial_sum()
                rad.partial_sum()
        assert np.array_equal(conv.to_numpy(), rad.to_numpy())


class TestTiming:
    def test_radram_wins_on_bulk_mutation(self):
        conv, rad, _ = make_pair(capacity_pages=8, fill=12000)
        t0c, t0r = conv.elapsed_ns, rad.elapsed_ns
        conv.insert(10, 1)
        rad.insert(10, 1)
        assert conv.elapsed_ns - t0c > rad.elapsed_ns - t0r

    def test_rebinding_charged_when_configured(self):
        from dataclasses import replace

        cfg = replace(SMALL, reconfig_ns_per_page=10_000.0)
        a = APArray(capacity_pages=2, backend="radram", radram_config=cfg)
        a.extend(range(100))
        a.insert(0, 1)  # mutation set already bound at construction
        before = a.elapsed_ns
        a.accumulate()  # needs a re-bind: + pages * reconfig
        assert a.elapsed_ns - before > 2 * 10_000.0

    def test_mutation_set_needs_no_rebinding(self):
        a = APArray(capacity_pages=2, backend="radram", radram_config=SMALL)
        a.extend(range(100))
        impl = a._impl
        a.insert(0, 1)
        a.delete(0)
        assert impl._bound == ("insert", "delete")
        a.count(5)  # count does not fit beside the shifters: re-bind
        assert impl._bound == ("count",)
        a.insert(0, 2)  # and back
        assert impl._bound == ("insert", "delete")


class TestOperationCircuits:
    def test_all_extension_circuits_fit_the_page_budget(self):
        for name, op in OPERATION_CIRCUITS.items():
            assert 0 < op.le_count <= 256, name

    def test_mutation_set_fits_but_count_does_not(self):
        # insert+delete = 224 LEs fits the 256-LE page; adding count
        # (141) would overflow — exactly the paper's re-binding case.
        assert 115 + 109 <= 256
        assert 115 + 109 + 141 > 256

    def test_shuffle_permutation_deterministic(self):
        p1 = _shuffle_permutation(100, 32, seed=5)
        p2 = _shuffle_permutation(100, 32, seed=5)
        assert np.array_equal(p1, p2)
        assert sorted(p1) == list(range(100))
