"""Table 3 reproduction checks: every circuit vs the paper's values."""

import pytest

from repro.radram.config import RADramConfig
from repro.synth.circuits import CIRCUITS, TABLE3_PAPER
from repro.synth.report import format_table3, synthesize, table3
from repro.synth.timing import critical_path_ns


class TestTable3:
    def test_all_seven_circuits_present(self):
        assert set(CIRCUITS) == set(TABLE3_PAPER)
        assert len(table3()) == 7

    @pytest.mark.parametrize("name", sorted(CIRCUITS))
    def test_le_count_matches_paper_exactly(self, name):
        result = synthesize(CIRCUITS[name]())
        assert result.les == TABLE3_PAPER[name][0]

    @pytest.mark.parametrize("name", sorted(CIRCUITS))
    def test_speed_within_8_percent_of_paper(self, name):
        result = synthesize(CIRCUITS[name]())
        paper_speed = TABLE3_PAPER[name][1]
        assert result.speed_ns == pytest.approx(paper_speed, rel=0.08)

    @pytest.mark.parametrize("name", sorted(CIRCUITS))
    def test_code_size_within_10_percent_of_paper(self, name):
        result = synthesize(CIRCUITS[name]())
        paper_code = TABLE3_PAPER[name][2]
        assert result.code_kb == pytest.approx(paper_code, rel=0.10)

    def test_every_circuit_fits_the_radram_le_budget(self):
        # The paper: "all of our designs are below this amount" (256).
        budget = RADramConfig.reference().les_per_page
        for result in table3():
            assert result.les <= budget

    def test_every_circuit_meets_100mhz_with_headroom_by_2001(self):
        # Section 6: a 100 MHz clock (10 ns) should be achievable given
        # "modest advances" — our FLEX-10K-era estimates are 26-45 ns,
        # i.e. within a 2.6-4.5x improvement.
        for result in table3():
            assert 10.0 < result.speed_ns < 60.0

    def test_relative_ordering_matches_paper(self):
        # Matrix is the largest circuit, Array-delete the smallest.
        results = {r.name: r for r in table3()}
        assert results["Matrix"].les == max(r.les for r in table3())
        assert results["Array-delete"].les == min(r.les for r in table3())
        # Insert is faster than delete (the paper's odd little fact).
        assert results["Array-insert"].speed_ns < results["Array-delete"].speed_ns

    def test_format_includes_all_rows(self):
        text = format_table3()
        for name in CIRCUITS:
            assert name in text
