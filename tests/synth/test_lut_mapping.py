"""Unit + property tests for the 4-LUT mapping model."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.synth.lut import (
    code_size_bytes,
    le_count,
    operator_les,
    operator_levels,
)
from repro.synth.netlist import Netlist, Operator, OpKind

widths = st.integers(min_value=1, max_value=64)


class TestOperatorMapping:
    def test_adder_one_le_per_bit(self):
        assert operator_les(Operator(OpKind.ADD, 32)) == 32

    def test_equality_uses_reduction_tree(self):
        # 32 bits: 8 + 2 + 1 = 11 LUTs.
        assert operator_les(Operator(OpKind.EQ, 32)) == 11
        assert operator_les(Operator(OpKind.EQ, 16)) == 5
        assert operator_les(Operator(OpKind.EQ, 4)) == 1

    def test_mux4_twice_mux2(self):
        assert operator_les(Operator(OpKind.MUX4, 8)) == 2 * operator_les(
            Operator(OpKind.MUX2, 8)
        )

    def test_register_one_le_per_bit(self):
        assert operator_les(Operator(OpKind.REG, 32)) == 32

    def test_satclamp_is_detect_plus_mux(self):
        assert operator_les(Operator(OpKind.SATCLAMP, 16)) == 5 + 16

    def test_fsm_one_hot(self):
        assert operator_les(Operator(OpKind.FSM, 4)) == 8

    def test_register_contributes_no_levels(self):
        assert operator_levels(Operator(OpKind.REG, 32)) == 0.0

    def test_wider_adders_are_slower(self):
        assert operator_levels(Operator(OpKind.ADD, 32)) > operator_levels(
            Operator(OpKind.ADD, 8)
        )

    @given(bits=widths)
    @settings(max_examples=50, deadline=None)
    def test_every_kind_maps_to_positive_les(self, bits):
        for kind in OpKind:
            assert operator_les(Operator(kind, bits)) >= 1

    @given(bits=widths)
    @settings(max_examples=50, deadline=None)
    def test_le_counts_monotone_in_width(self, bits):
        for kind in OpKind:
            narrow = operator_les(Operator(kind, bits))
            wide = operator_les(Operator(kind, bits + 8))
            assert wide >= narrow


class TestNetlist:
    def test_le_count_sums_operators(self):
        n = Netlist("t").add(OpKind.ADD, 8).add(OpKind.REG, 8)
        assert le_count(n) == 16

    def test_code_size_tracks_les(self):
        small = Netlist("s").add(OpKind.ADD, 8)
        large = Netlist("l").add(OpKind.ADD, 64)
        assert code_size_bytes(large) > code_size_bytes(small)

    def test_stage_bookkeeping(self):
        n = Netlist("t").add(OpKind.ADD, 8, stage=0).add(OpKind.REG, 8, stage=2)
        assert n.n_stages == 3
        assert len(n.stage_operators(0)) == 1
        assert len(n.stage_operators(1)) == 0

    def test_rejects_zero_width(self):
        with pytest.raises(ValueError):
            Operator(OpKind.ADD, 0)

    def test_by_kind_counts(self):
        n = Netlist("t").add(OpKind.ADD, 8).add(OpKind.ADD, 16).add(OpKind.REG, 8)
        assert n.by_kind()[OpKind.ADD] == 2
