"""Suite-wide fixtures.

The sweep harness memoizes simulation results under ``.repro_cache/``
(or ``$REPRO_CACHE_DIR``).  Tests must never read a developer's warm
cache or leave entries behind in the repository, so the whole session
is pointed at a throwaway directory.  Within the session the cache is
*shared*: experiments swept by several test modules (e.g. the Figure 3
grid) simulate once.  Tests that need a cold or private cache pass an
explicit ``HarnessSettings``/``cache_dir``.
"""

import pytest

from repro.experiments import harness


@pytest.fixture(scope="session", autouse=True)
def _session_sweep_cache(tmp_path_factory):
    cache_dir = tmp_path_factory.mktemp("sweep-cache")
    import os

    previous = os.environ.get(harness.CACHE_DIR_ENV)
    os.environ[harness.CACHE_DIR_ENV] = str(cache_dir)
    yield cache_dir
    if previous is None:
        os.environ.pop(harness.CACHE_DIR_ENV, None)
    else:
        os.environ[harness.CACHE_DIR_ENV] = previous


@pytest.fixture(autouse=True)
def _default_harness_settings():
    """Each test starts from (and restores) the default sweep policy."""
    harness.reset_settings()
    yield
    harness.reset_settings()
