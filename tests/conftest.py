"""Suite-wide fixtures.

The sweep harness memoizes simulation results under ``.repro_cache/``
(or ``$REPRO_CACHE_DIR``).  Tests must never read a developer's warm
cache or leave entries behind in the repository, so the whole session
is pointed at a throwaway directory.  Within the session the cache is
*shared*: experiments swept by several test modules (e.g. the Figure 3
grid) simulate once.  Tests that need a cold or private cache pass an
explicit ``HarnessSettings``/``cache_dir``.
"""

import signal

import pytest

from repro.experiments import harness

#: Per-test wall-clock deadline (seconds).  A safety net against hung
#: tests (deadlocked pools, un-preempted sleeps) — generous enough that
#: no legitimate test approaches it.  ``pytest-timeout`` is not a
#: dependency, so the deadline is a plain SIGALRM; override per test
#: with ``@pytest.mark.deadline(seconds)``.
TEST_DEADLINE_S = 300


def pytest_configure(config):
    config.addinivalue_line(
        "markers", "deadline(seconds): override the per-test SIGALRM deadline"
    )


@pytest.fixture(autouse=True)
def _per_test_deadline(request):
    if not hasattr(signal, "SIGALRM"):  # pragma: no cover - POSIX only
        yield
        return
    marker = request.node.get_closest_marker("deadline")
    seconds = int(marker.args[0]) if marker else TEST_DEADLINE_S

    def _expired(signum, frame):
        raise TimeoutError(
            f"test exceeded its {seconds}s deadline (see tests/conftest.py)"
        )

    previous = signal.signal(signal.SIGALRM, _expired)
    signal.alarm(seconds)
    try:
        yield
    finally:
        signal.alarm(0)
        signal.signal(signal.SIGALRM, previous)


@pytest.fixture(scope="session", autouse=True)
def _session_sweep_cache(tmp_path_factory):
    cache_dir = tmp_path_factory.mktemp("sweep-cache")
    import os

    previous = os.environ.get(harness.CACHE_DIR_ENV)
    os.environ[harness.CACHE_DIR_ENV] = str(cache_dir)
    yield cache_dir
    if previous is None:
        os.environ.pop(harness.CACHE_DIR_ENV, None)
    else:
        os.environ[harness.CACHE_DIR_ENV] = previous


@pytest.fixture(autouse=True)
def _default_harness_settings():
    """Each test starts from (and restores) the default sweep policy."""
    harness.reset_settings()
    yield
    harness.reset_settings()
