"""Tests for the image-processing filter family."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.apps.data import noisy_image
from repro.imaging.filters import (
    FILTERS,
    convolve3x3,
    dilate3x3,
    erode3x3,
    filter_timed,
    sobel_magnitude,
)

images = arrays(np.uint16, (7, 9), elements=st.integers(0, 4000))


class TestConvolution:
    def test_identity_kernel(self):
        img = noisy_image(8, 8, seed=0)
        out = convolve3x3(img, [[0, 0, 0], [0, 1, 0], [0, 0, 0]])
        assert np.array_equal(out, img)

    def test_box_blur_averages(self):
        img = np.zeros((5, 5), dtype=np.uint16)
        img[2, 2] = 16
        out = convolve3x3(img, np.ones((3, 3), dtype=int), shift=0)
        # Every interior neighbour of the impulse sums it once.
        assert out[1, 1] == 16 and out[2, 2] == 16 and out[3, 3] == 16

    def test_shift_normalizes(self):
        img = np.full((5, 5), 16, dtype=np.uint16)
        out = convolve3x3(img, np.ones((3, 3), dtype=int), shift=3)
        assert out[2, 2] == 16 * 9 >> 3

    def test_clamps_to_dtype(self):
        img = np.full((5, 5), 60000, dtype=np.uint16)
        out = convolve3x3(img, np.ones((3, 3), dtype=int))
        assert out[2, 2] == 65535

    def test_borders_copied(self):
        img = noisy_image(6, 6, seed=1)
        out = convolve3x3(img, [[1, 1, 1], [1, 1, 1], [1, 1, 1]], shift=3)
        assert np.array_equal(out[0], img[0])
        assert np.array_equal(out[:, -1], img[:, -1])

    def test_bad_kernel_rejected(self):
        with pytest.raises(ValueError):
            convolve3x3(np.zeros((5, 5), dtype=np.uint16), np.ones((2, 2)))


class TestMorphology:
    def test_erosion_removes_bright_speck(self):
        img = np.full((5, 5), 100, dtype=np.uint16)
        img[2, 2] = 4000
        assert erode3x3(img)[2, 2] == 100

    def test_dilation_spreads_bright_speck(self):
        img = np.full((5, 5), 100, dtype=np.uint16)
        img[2, 2] = 4000
        out = dilate3x3(img)
        assert out[1, 1] == 4000 and out[3, 3] == 4000

    @given(img=images)
    @settings(max_examples=50, deadline=None)
    def test_erode_le_image_le_dilate(self, img):
        interior = np.s_[1:-1, 1:-1]
        assert np.all(erode3x3(img)[interior] <= img[interior])
        assert np.all(dilate3x3(img)[interior] >= img[interior])

    @given(img=images)
    @settings(max_examples=50, deadline=None)
    def test_duality_on_inverted_images(self, img):
        # Erosion of the complement equals complement of dilation.
        inv = (4095 - img).astype(np.uint16)
        left = erode3x3(inv)[1:-1, 1:-1]
        right = (4095 - dilate3x3(img))[1:-1, 1:-1]
        assert np.array_equal(left, right)

    @given(img=images)
    @settings(max_examples=30, deadline=None)
    def test_opening_is_idempotent_under_repeat(self, img):
        # erode-then-dilate (opening) never exceeds the original.
        opened = dilate3x3(erode3x3(img))
        assert np.all(opened[2:-2, 2:-2] <= dilate3x3(img)[2:-2, 2:-2])


class TestSobel:
    def test_flat_image_has_zero_edges(self):
        img = np.full((6, 6), 500, dtype=np.uint16)
        assert np.all(sobel_magnitude(img)[1:-1, 1:-1] == 0)

    def test_vertical_step_detected(self):
        img = np.zeros((6, 6), dtype=np.uint16)
        img[:, 3:] = 1000
        out = sobel_magnitude(img)
        assert out[2, 2] > 0 or out[2, 3] > 0
        assert out[2, 1] == 0  # far from the edge


class TestCircuitsAndTiming:
    def test_all_circuits_fit_the_le_budget(self):
        for name, filt in FILTERS.items():
            assert 0 < filt.le_count <= 256, name

    @pytest.mark.parametrize("name", sorted(FILTERS))
    def test_timed_matches_functional(self, name):
        img = noisy_image(16, 16, seed=2)
        result, stats = filter_timed(img, name, system="conventional")
        assert np.array_equal(result, FILTERS[name].apply(img))
        assert stats.total_ns > 0

    def test_radram_wins_at_scale(self):
        img = noisy_image(256, 256, seed=3)
        cfg = None
        _, conv = filter_timed(img, "sobel", system="conventional")
        _, rad = filter_timed(img, "sobel", system="radram", bands=16)
        assert rad.total_ns < conv.total_ns

    def test_unknown_filter_rejected(self):
        with pytest.raises(KeyError):
            filter_timed(np.zeros((4, 4), dtype=np.uint16), "glow")

    def test_unknown_system_rejected(self):
        with pytest.raises(ValueError):
            filter_timed(np.zeros((4, 4), dtype=np.uint16), "blur", system="gpu")
