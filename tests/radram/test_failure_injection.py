"""Failure injection: the memory system's error paths and edge cases."""

import numpy as np
import pytest

from repro.core.errors import ActivationError, BindError
from repro.core.functions import APFunction, CommRequest, PageTask, Segment
from repro.radram.config import RADramConfig
from repro.radram.system import RADramMemorySystem
from repro.sim import ops as O
from repro.sim.errors import OperationError
from repro.sim.machine import Machine
from repro.sim.memory import PagedMemory


def make_machine():
    cfg = RADramConfig.reference().with_page_bytes(4096)
    memsys = RADramMemorySystem(cfg)
    return Machine(memory=PagedMemory(page_bytes=4096), memsys=memsys), memsys


class TestActivationFailures:
    def test_double_activation_of_running_page_raises(self):
        machine, _ = make_machine()
        ops = [
            O.Activate(0, 1, PageTask.simple(1000)),
            O.Activate(0, 1, PageTask.simple(1000)),
        ]
        with pytest.raises(RuntimeError, match="still running"):
            machine.run(iter(ops))

    def test_reactivation_after_wait_is_fine(self):
        machine, _ = make_machine()
        ops = [
            O.Activate(0, 1, PageTask.simple(100)),
            O.WaitPage(0),
            O.Activate(0, 1, PageTask.simple(100)),
            O.WaitPage(0),
        ]
        stats = machine.run(iter(ops))
        assert stats.activations == 2

    def test_activate_with_no_task_rejected(self):
        machine, _ = make_machine()
        with pytest.raises(OperationError):
            machine.run(iter([O.Activate(0, 1, None)]))

    def test_negative_segment_cycles_rejected_at_construction(self):
        with pytest.raises(ActivationError):
            Segment(-1.0)


class TestCommFailures:
    def test_comm_with_unmapped_addresses_is_timing_only(self):
        # A CommRequest whose addresses are not mapped carries no
        # functional payload; the service must not crash.
        machine, memsys = make_machine()
        task = PageTask.of(
            [Segment(10, CommRequest(nbytes=64, src_vaddr=0xDEAD000, dst_vaddr=0xBEEF000))]
        )
        stats = machine.run(iter([O.Activate(0, 1, task), O.WaitPage(0)]))
        assert stats.interrupts == 1

    def test_zero_byte_comm_costs_only_entry(self):
        machine, memsys = make_machine()
        task = PageTask.of([Segment(10, CommRequest(nbytes=0))])
        stats = machine.run(iter([O.Activate(0, 1, task), O.WaitPage(0)]))
        cfg = memsys.config
        assert stats.interrupt_ns == pytest.approx(
            cfg.interrupt_base_ns + 2 * machine.config.dram.miss_latency_ns
        )

    def test_unbatched_ablation_pays_entry_per_request(self):
        from dataclasses import replace

        def interrupt_cost(batch: bool) -> float:
            cfg = replace(
                RADramConfig.reference().with_page_bytes(4096),
                batch_interrupts=batch,
            )
            memsys = RADramMemorySystem(cfg)
            machine = Machine(memory=PagedMemory(page_bytes=4096), memsys=memsys)
            task = lambda: PageTask.of([Segment(500, CommRequest(nbytes=4)), Segment(10)])
            ops = [O.Activate(p, 1, task()) for p in range(4)]
            ops += [O.Compute(7000)]
            ops += [O.WaitPage(p) for p in range(4)]
            return machine.run(iter(ops)).interrupt_ns

        batched = interrupt_cost(True)
        unbatched = interrupt_cost(False)
        assert unbatched == pytest.approx(batched + 3 * 500.0)


class TestBudgetEdges:
    def test_exactly_at_le_budget_is_accepted(self):
        from repro.radram.logic import LogicBlock

        block = LogicBlock(RADramConfig.reference())
        block.configure([APFunction(name="f", le_count=256)])
        assert block.utilization == 1.0

    def test_one_over_budget_rejected(self):
        from repro.radram.logic import LogicBlock

        block = LogicBlock(RADramConfig.reference())
        with pytest.raises(BindError):
            block.configure([APFunction(name="f", le_count=257)])

    def test_empty_task_completes_immediately(self):
        machine, _ = make_machine()
        stats = machine.run(
            iter([O.Activate(0, 1, PageTask.simple(0.0)), O.WaitPage(0)])
        )
        assert stats.wait_ns == 0.0


class TestWorkloadEdges:
    def test_database_rejects_pages_too_small_for_a_record(self):
        from repro.apps.registry import get_app

        with pytest.raises(ValueError):
            get_app("database").workload(1, page_bytes=256, functional=False)

    def test_tiny_fractional_workloads_run(self):
        from repro.apps.registry import ALL_APPS
        from repro.experiments.runner import run_radram

        for name, app in ALL_APPS.items():
            r = run_radram(app, 0.05, page_bytes=16 * 1024, functional=True)
            assert r.total_ns > 0, name
