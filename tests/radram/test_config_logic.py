"""Unit tests for RADram configuration and logic blocks."""

import pytest

from repro.core.errors import BindError
from repro.core.functions import APFunction
from repro.radram.config import RADramConfig
from repro.radram.logic import LogicBlock
from repro.sim.config import KB
from repro.sim.errors import ConfigError


class TestConfig:
    def test_reference_matches_paper(self):
        cfg = RADramConfig.reference()
        assert cfg.page_bytes == 512 * KB
        assert cfg.les_per_page == 256
        assert cfg.logic_hz == 100e6
        assert cfg.logic_cycle_ns == 10.0

    def test_logic_divisor_reference_is_10(self):
        assert RADramConfig.reference().logic_divisor(1e9) == 10.0

    def test_with_logic_divisor(self):
        cfg = RADramConfig.reference().with_logic_divisor(2)  # 500 MHz
        assert cfg.logic_hz == pytest.approx(500e6)
        slow = RADramConfig.reference().with_logic_divisor(100)  # 10 MHz
        assert slow.logic_cycle_ns == pytest.approx(100.0)

    def test_rejects_bad_divisor(self):
        with pytest.raises(ConfigError):
            RADramConfig.reference().with_logic_divisor(0)

    def test_rejects_bad_page_size(self):
        with pytest.raises(ConfigError):
            RADramConfig(page_bytes=0)


class TestLogicBlock:
    def test_configure_within_budget(self):
        block = LogicBlock(RADramConfig.reference())
        fns = [APFunction(name="f", le_count=200)]
        block.configure(fns)
        assert block.configured_les == 200
        assert block.utilization == pytest.approx(200 / 256)

    def test_configure_over_budget_raises(self):
        block = LogicBlock(RADramConfig.reference())
        with pytest.raises(BindError):
            block.configure([APFunction(name="f", le_count=257)])

    def test_set_total_is_budgeted(self):
        block = LogicBlock(RADramConfig.reference())
        fns = [
            APFunction(name="a", le_count=150),
            APFunction(name="b", le_count=150),
        ]
        with pytest.raises(BindError):
            block.configure(fns)

    def test_all_paper_circuits_fit(self):
        # Table 3: every application circuit is below 256 LEs.
        table3_les = [109, 115, 141, 142, 179, 205, 131]
        block = LogicBlock(RADramConfig.reference())
        for les in table3_les:
            block.configure([APFunction(name="f", le_count=les)])
        assert block.reconfigurations == len(table3_les)

    def test_cycles_to_ns_uses_logic_clock(self):
        block = LogicBlock(RADramConfig.reference())
        assert block.cycles_to_ns(100) == pytest.approx(1000.0)
