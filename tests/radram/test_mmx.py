"""Unit + property tests for MMX packed-integer semantics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.radram.mmx import (
    CONVENTIONAL_MMX_BYTES_PER_INSN,
    MMX_OPS,
    conventional_instruction_count,
    mmx_op,
    radram_mmx_task,
)

i16 = arrays(np.int16, 16, elements=st.integers(-32768, 32767))
u8 = arrays(np.uint8, 16, elements=st.integers(0, 255))


class TestSemantics:
    def test_paddsw_saturates_high(self):
        op = mmx_op("paddsw")
        a = np.array([32000, 100], dtype=np.int16)
        b = np.array([32000, 100], dtype=np.int16)
        assert list(op.apply(a, b)) == [32767, 200]

    def test_paddsw_saturates_low(self):
        op = mmx_op("paddsw")
        a = np.array([-32000], dtype=np.int16)
        b = np.array([-32000], dtype=np.int16)
        assert list(op.apply(a, b)) == [-32768]

    def test_paddw_wraps(self):
        op = mmx_op("paddw")
        a = np.array([32767], dtype=np.int16)
        b = np.array([1], dtype=np.int16)
        assert list(op.apply(a, b)) == [-32768]

    def test_paddusb_saturates_at_255(self):
        op = mmx_op("paddusb")
        a = np.array([250, 10], dtype=np.uint8)
        b = np.array([10, 10], dtype=np.uint8)
        assert list(op.apply(a, b)) == [255, 20]

    def test_psubusb_saturates_at_zero(self):
        op = mmx_op("psubusb")
        a = np.array([5], dtype=np.uint8)
        b = np.array([10], dtype=np.uint8)
        assert list(op.apply(a, b)) == [0]

    def test_pmullw_keeps_low_16(self):
        op = mmx_op("pmullw")
        a = np.array([300], dtype=np.int16)
        b = np.array([300], dtype=np.int16)
        assert list(op.apply(a, b)) == [np.int16(90000 & 0xFFFF)]

    def test_pmulhw_keeps_high_16(self):
        op = mmx_op("pmulhw")
        a = np.array([300], dtype=np.int16)
        b = np.array([300], dtype=np.int16)
        assert list(op.apply(a, b)) == [90000 >> 16]

    def test_pcmpeqw_all_ones_mask(self):
        op = mmx_op("pcmpeqw")
        a = np.array([1, 2], dtype=np.int16)
        b = np.array([1, 3], dtype=np.int16)
        assert list(op.apply(a, b)) == [-1, 0]

    def test_unknown_op_raises(self):
        with pytest.raises(KeyError):
            mmx_op("pbogus")


class TestSemanticsProperties:
    @given(a=i16, b=i16)
    @settings(max_examples=100, deadline=None)
    def test_paddsw_never_overflows(self, a, b):
        out = mmx_op("paddsw").apply(a, b)
        exact = a.astype(np.int32) + b.astype(np.int32)
        assert np.all(out == np.clip(exact, -32768, 32767))

    @given(a=u8, b=u8)
    @settings(max_examples=100, deadline=None)
    def test_paddusb_monotone_in_saturation(self, a, b):
        out = mmx_op("paddusb").apply(a, b)
        assert np.all(out >= np.maximum(a, b) - 0)  # saturating add >= max input

    @given(a=i16, b=i16)
    @settings(max_examples=100, deadline=None)
    def test_xor_is_self_inverse(self, a, b):
        op = mmx_op("pxor")
        au = a.view(np.uint16).astype(np.uint32)
        bu = b.view(np.uint16).astype(np.uint32)
        assert np.all(op.apply(op.apply(au, bu), bu) == au)


class TestCostModels:
    def test_conventional_one_insn_per_32bits(self):
        assert conventional_instruction_count(256 * 1024) == 64 * 1024
        assert conventional_instruction_count(5) == 2

    def test_radram_wide_instruction_time_matches_table4(self):
        # One instruction over 256 KB should take ~142 us at 100 MHz.
        task = radram_mmx_task(256 * 1024)
        t_c_us = task.total_cycles * 10.0 / 1000.0
        assert t_c_us == pytest.approx(142.3, rel=0.02)

    def test_wide_form_beats_conventional_by_orders_of_magnitude(self):
        nbytes = 256 * 1024
        conv_ns = conventional_instruction_count(nbytes) * 1.0
        radram_ns = radram_mmx_task(nbytes).total_cycles * 10.0
        assert conv_ns / radram_ns < 1.0  # per page, logic is slower...
        # ...but 128 pages run in parallel while the CPU runs serially.
        assert 128 * conv_ns / radram_ns > 30.0
