"""Unit tests for in-page task execution timelines."""

import pytest

from repro.core.functions import CommRequest, PageTask, Segment
from repro.radram.config import RADramConfig
from repro.radram.subarray import PageExecution, Subarray


def make_exec(segments, start=0.0, cycle_ns=10.0):
    return PageExecution(PageTask.of(segments), start, cycle_ns)


class TestPageExecution:
    def test_simple_task_completes_without_blocking(self):
        ex = make_exec([Segment(100)])
        assert ex.is_done
        assert ex.completion_ns == pytest.approx(1000.0)

    def test_start_offset_shifts_completion(self):
        ex = make_exec([Segment(100)], start=500.0)
        assert ex.completion_ns == pytest.approx(1500.0)

    def test_blocks_at_comm_point(self):
        ex = make_exec([Segment(50, CommRequest(nbytes=64)), Segment(50)])
        assert ex.is_blocked
        assert ex.block_time_ns == pytest.approx(500.0)
        assert not ex.is_done

    def test_resume_continues_from_service_time(self):
        ex = make_exec([Segment(50, CommRequest(nbytes=64)), Segment(50)])
        ex.resume(serviced_at_ns=2000.0)
        assert ex.is_done
        assert ex.completion_ns == pytest.approx(2500.0)

    def test_resume_before_block_time_is_clamped(self):
        ex = make_exec([Segment(50, CommRequest(nbytes=64)), Segment(50)])
        ex.resume(serviced_at_ns=100.0)  # earlier than the block at 500
        assert ex.completion_ns == pytest.approx(1000.0)

    def test_multiple_blocks_in_sequence(self):
        ex = make_exec(
            [
                Segment(10, CommRequest(nbytes=4)),
                Segment(10, CommRequest(nbytes=4)),
                Segment(10),
            ]
        )
        assert ex.block_time_ns == pytest.approx(100.0)
        ex.resume(100.0)
        assert ex.is_blocked
        assert ex.block_time_ns == pytest.approx(200.0)
        ex.resume(200.0)
        assert ex.is_done
        assert ex.completion_ns == pytest.approx(300.0)

    def test_resume_when_not_blocked_raises(self):
        ex = make_exec([Segment(10)])
        with pytest.raises(RuntimeError):
            ex.resume(0.0)

    def test_busy_time_excludes_blocked_time(self):
        ex = make_exec([Segment(50, CommRequest(nbytes=4)), Segment(50)])
        ex.resume(10_000.0)
        assert ex.busy_ns == pytest.approx(1000.0)


class TestSubarray:
    def test_activation_while_running_raises(self):
        sub = Subarray(0, RADramConfig.reference())
        sub.start(PageTask.of([Segment(10, CommRequest(nbytes=4))]), 0.0)
        with pytest.raises(RuntimeError):
            sub.start(PageTask.simple(10), 0.0)

    def test_reactivation_after_done_accumulates_busy(self):
        sub = Subarray(0, RADramConfig.reference())
        sub.start(PageTask.simple(100), 0.0)
        sub.start(PageTask.simple(50), 5000.0)
        assert sub.activations == 2
        assert sub.total_busy_ns == pytest.approx(1000.0)
