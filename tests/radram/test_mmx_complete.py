"""Tests for the completed MMX instruction set (Section 5.2 extension)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.radram.mmx import MMX_SHIFTS, mmx_op, mmx_shift

i16v = arrays(np.int16, 8, elements=st.integers(-32768, 32767))
u8v = arrays(np.uint8, 8, elements=st.integers(0, 255))


class TestPmaddwd:
    def test_matches_manual_dot_of_pairs(self):
        a = np.array([1, 2, 3, 4], dtype=np.int16)
        b = np.array([10, 20, 30, 40], dtype=np.int16)
        out = mmx_op("pmaddwd").apply(a, b)
        assert list(out) == [1 * 10 + 2 * 20, 3 * 30 + 4 * 40]

    def test_no_intermediate_overflow(self):
        a = np.array([32767, 32767], dtype=np.int16)
        b = np.array([32767, 32767], dtype=np.int16)
        out = mmx_op("pmaddwd").apply(a, b)
        assert out[0] == 2 * 32767 * 32767  # fits int32

    def test_odd_length_rejected(self):
        with pytest.raises(ValueError):
            mmx_op("pmaddwd").apply(
                np.array([1], dtype=np.int16), np.array([1], dtype=np.int16)
            )

    @given(a=i16v, b=i16v)
    @settings(max_examples=50, deadline=None)
    def test_matches_int32_reference(self, a, b):
        out = mmx_op("pmaddwd").apply(a, b)
        wide = (a.astype(np.int64) * b.astype(np.int64)).reshape(-1, 2).sum(axis=1)
        # The sum of two int16 products exceeds int32 only when both are
        # (-32768)^2; the architectural result wraps to 0x80000000.
        ref = (wide & 0xFFFFFFFF).astype(np.uint32).astype(np.int32)
        assert np.array_equal(out, ref)

    def test_all_min_words_wrap_to_int32_min(self):
        """(-32768)*(-32768)*2 = 2^31: pmaddwd's one overflow case wraps."""
        a = np.full(8, -32768, dtype=np.int16)
        out = mmx_op("pmaddwd").apply(a, a)
        assert list(out) == [np.iinfo(np.int32).min] * 4


class TestPack:
    def test_packsswb_saturates(self):
        a = np.array([300, -300], dtype=np.int16)
        b = np.array([5, -5], dtype=np.int16)
        out = mmx_op("packsswb").apply(a, b)
        assert list(out) == [127, -128, 5, -5]

    def test_packuswb_clamps_to_unsigned(self):
        a = np.array([-5, 300], dtype=np.int16)
        b = np.array([128, 7], dtype=np.int16)
        out = mmx_op("packuswb").apply(a, b)
        assert list(out) == [0, 255, 128, 7]

    def test_unpack_roundtrips_pack_for_small_values(self):
        lo = np.array([1, 2, 3, 4], dtype=np.uint8)
        hi = np.array([5, 6, 7, 8], dtype=np.uint8)
        inter = mmx_op("punpcklbw").apply(
            np.concatenate([lo, hi]), np.zeros(8, dtype=np.uint8)
        )
        # Interleaving with zeros widens bytes to words (the classic
        # MMX byte->word promotion idiom).
        words = inter.view(np.uint16) if inter.dtype == np.uint8 else inter
        assert list(inter[0::2]) == [1, 2, 3, 4]
        assert all(v == 0 for v in inter[1::2])

    def test_punpckhbw_takes_high_halves(self):
        a = np.arange(8, dtype=np.uint8)
        b = np.arange(8, 16, dtype=np.uint8)
        out = mmx_op("punpckhbw").apply(a, b)
        assert list(out[0::2]) == [4, 5, 6, 7]
        assert list(out[1::2]) == [12, 13, 14, 15]


class TestShifts:
    def test_psllw_multiplies_by_power_of_two(self):
        a = np.array([3, -3], dtype=np.int16)
        out = mmx_shift("psllw").apply(a, 4)
        assert list(out) == [48, -48]

    def test_psraw_preserves_sign(self):
        a = np.array([-256, 256], dtype=np.int16)
        out = mmx_shift("psraw").apply(a, 4)
        assert list(out) == [-16, 16]

    def test_psrlw_is_logical(self):
        a = np.array([-1], dtype=np.int16)
        out = mmx_shift("psrlw").apply(a, 8)
        assert out[0] == 0x00FF

    def test_overwidth_logical_shift_zeroes(self):
        a = np.array([1234], dtype=np.int16)
        assert mmx_shift("psllw").apply(a, 16)[0] == 0
        assert mmx_shift("psrlw").apply(a, 20)[0] == 0

    def test_overwidth_arithmetic_shift_sign_fills(self):
        a = np.array([-1234], dtype=np.int16)
        assert mmx_shift("psraw").apply(a, 99)[0] == -1

    def test_dword_shifts(self):
        a = np.array([1 << 20], dtype=np.int32)
        assert mmx_shift("pslld").apply(a, 4)[0] == 1 << 24
        assert mmx_shift("psrld").apply(a, 4)[0] == 1 << 16
        assert mmx_shift("psrad").apply(np.array([-1024], dtype=np.int32), 4)[0] == -64

    @given(a=i16v, n=st.integers(min_value=0, max_value=15))
    @settings(max_examples=50, deadline=None)
    def test_shift_pairs_are_inverses_on_preserved_bits(self, a, n):
        left = mmx_shift("psllw").apply(a, n)
        back = mmx_shift("psrlw").apply(left, n)
        mask = np.uint16((1 << (16 - n)) - 1)
        assert np.array_equal(
            back.view(np.uint16) & mask, a.view(np.uint16) & mask
        )

    def test_all_shifts_registered(self):
        assert set(MMX_SHIFTS) == {"psllw", "psrlw", "psraw", "pslld", "psrld", "psrad"}

    def test_unknown_shift_rejected(self):
        with pytest.raises(KeyError):
            mmx_shift("psllq")


class TestNewBinaryOps:
    def test_paddd_wraps(self):
        a = np.array([0x7FFFFFFF], dtype=np.int32)
        out = mmx_op("paddd").apply(a, np.array([1], dtype=np.int32))
        assert out[0] == -0x80000000

    def test_psubsb_saturates(self):
        a = np.array([-120], dtype=np.int8)
        out = mmx_op("psubsb").apply(a, np.array([100], dtype=np.int8))
        assert out[0] == -128

    def test_byte_compares(self):
        a = np.array([1, 5], dtype=np.int8)
        b = np.array([1, 3], dtype=np.int8)
        assert list(mmx_op("pcmpeqb").apply(a, b)) == [-1, 0]
        assert list(mmx_op("pcmpgtb").apply(a, b)) == [0, -1]

    def test_dword_compare(self):
        a = np.array([7], dtype=np.int32)
        assert mmx_op("pcmpeqd").apply(a, a)[0] == -1
