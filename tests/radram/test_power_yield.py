"""Tests for the power and yield models (Section 3 arguments)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.radram.config import RADramConfig
from repro.radram.power import PowerModel, port_width_study
from repro.radram.yieldmodel import (
    CHIP_CLASSES,
    ChipClass,
    chip_yield,
    cost_per_working_chip,
    yield_table,
)


class TestPowerModel:
    def test_power_scales_with_active_les(self):
        m = PowerModel(RADramConfig.reference())
        assert m.logic_mw(256) > m.logic_mw(100) > 0

    def test_power_scales_with_logic_clock(self):
        fast = PowerModel(RADramConfig.reference().with_logic_divisor(2))
        slow = PowerModel(RADramConfig.reference().with_logic_divisor(100))
        assert fast.logic_mw(150) > slow.logic_mw(150)

    def test_refresh_doubles_per_10c(self):
        m = PowerModel(RADramConfig.reference())
        assert m.refresh_mw(65.0) == pytest.approx(4 * m.refresh_mw(45.0))

    def test_temperature_fixed_point_converges(self):
        m = PowerModel(RADramConfig.reference())
        p = m.page_power(active_les=150)
        # Refresh is elevated above ambient baseline but bounded.
        assert m.refresh_mw(45.0) < p.refresh_mw < 10 * m.refresh_mw(45.0)

    def test_wider_port_costs_more_power(self):
        narrow = PowerModel(RADramConfig(port_bytes=4))
        wide = PowerModel(RADramConfig(port_bytes=64))
        assert wide.port_mw() > 10 * narrow.port_mw()

    def test_chip_power_linear_in_active_pages(self):
        m = PowerModel(RADramConfig.reference())
        assert m.chip_mw(128) == pytest.approx(2 * m.chip_mw(64))


class TestPortWidthStudy:
    def test_reproduces_section3_tradeoff(self):
        rows = port_width_study([4, 8, 32, 64])
        assert [r["port_bits"] for r in rows] == [32, 64, 256, 512]
        # Bandwidth rises linearly, power monotonically.
        bw = [r["relative_bandwidth"] for r in rows]
        assert bw == sorted(bw)
        power = [r["page_power_mw"] for r in rows]
        assert power == sorted(power)
        # "beyond our area constraints for some applications": at 512
        # bits some circuits no longer fit; at 32 bits all seven do.
        assert rows[0]["circuits_fitting"] == 7
        assert rows[-1]["circuits_fitting"] < 7


class TestYieldModel:
    def test_dram_yield_is_high(self):
        assert chip_yield(CHIP_CLASSES["dram"]) > 0.9

    def test_radram_yields_like_dram(self):
        # The paper's core claim: "RADram is intended to fabricate at
        # DRAM costs".
        dram = cost_per_working_chip(CHIP_CLASSES["dram"])
        radram = cost_per_working_chip(CHIP_CLASSES["radram"])
        assert radram < 1.10 * dram

    def test_processor_costs_about_ten_times_dram(self):
        table = {r["chip"]: r for r in yield_table()}
        assert 7 < table["processor"]["cost_vs_dram"] < 13

    def test_iram_sits_between(self):
        table = {r["chip"]: r for r in yield_table()}
        assert (
            table["radram"]["cost_vs_dram"]
            < table["iram"]["cost_vs_dram"]
            < table["processor"]["cost_vs_dram"]
        )

    @given(density=st.floats(min_value=0.05, max_value=3.0))
    @settings(max_examples=50, deadline=None)
    def test_yield_decreases_with_defect_density(self, density):
        for chip in CHIP_CLASSES.values():
            assert chip_yield(chip, density) >= chip_yield(chip, density + 0.5)

    @given(
        repairable=st.floats(min_value=0.0, max_value=1.0),
        spares=st.integers(min_value=0, max_value=16),
    )
    @settings(max_examples=50, deadline=None)
    def test_yield_is_a_probability(self, repairable, spares):
        chip = ChipClass("x", area_cm2=1.0, repairable_fraction=repairable, spare_capacity=spares)
        y = chip_yield(chip)
        assert 0.0 <= y <= 1.0

    def test_more_spares_never_hurt(self):
        base = ChipClass("a", 1.0, 0.9, spare_capacity=2)
        more = ChipClass("b", 1.0, 0.9, spare_capacity=10)
        assert chip_yield(more) >= chip_yield(base)


class TestHardwareComm:
    def test_hardware_comm_avoids_processor_interrupts(self):
        from repro.core.functions import CommRequest, PageTask, Segment
        from repro.radram.system import RADramMemorySystem
        from repro.sim import ops as O
        from repro.sim.machine import Machine
        from repro.sim.memory import PagedMemory

        def run(config):
            memsys = RADramMemorySystem(config)
            machine = Machine(memory=PagedMemory(page_bytes=4096), memsys=memsys)
            task = PageTask.of([Segment(100, CommRequest(nbytes=256)), Segment(100)])
            stats = machine.run(iter([O.Activate(0, 1, task), O.WaitPage(0)]))
            return stats, memsys

        base = RADramConfig.reference().with_page_bytes(4096)
        proc_stats, proc_sys = run(base)
        hw_stats, hw_sys = run(base.with_hardware_comm())
        assert proc_stats.interrupts == 1
        assert hw_stats.interrupts == 0
        assert hw_sys.comm_requests == 1  # still counted
        # The hardware network resolves the reference faster than an
        # interrupt + two DRAM round trips.
        assert hw_stats.total_ns < proc_stats.total_ns

    def test_hardware_comm_still_copies_functionally(self):
        import numpy as np

        from repro.core.functions import CommRequest, PageTask, Segment
        from repro.radram.system import RADramMemorySystem
        from repro.sim import ops as O
        from repro.sim.machine import Machine
        from repro.sim.memory import PagedMemory

        cfg = RADramConfig.reference().with_page_bytes(4096).with_hardware_comm()
        memsys = RADramMemorySystem(cfg)
        machine = Machine(memory=PagedMemory(page_bytes=4096), memsys=memsys)
        region = machine.memory.alloc_pages(2)
        machine.memory.write(region.base, np.full(8, 5, dtype=np.uint8))
        page_no = region.base // 4096
        task = PageTask.of(
            [Segment(10, CommRequest(nbytes=8, src_vaddr=region.base,
                                     dst_vaddr=region.base + 4096))]
        )
        machine.run(iter([O.Activate(page_no, 1, task), O.WaitPage(page_no)]))
        assert np.all(machine.memory.read(region.base + 4096, 8) == 5)

    def test_bad_mechanism_rejected(self):
        from repro.sim.errors import ConfigError

        with pytest.raises(ConfigError):
            RADramConfig(comm_mechanism="telepathy")
