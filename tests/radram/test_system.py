"""Integration tests: RADram memory system co-simulated with the CPU."""

import pytest

from repro.core.functions import CommRequest, PageTask, Segment
from repro.radram.config import RADramConfig
from repro.radram.dispatch import activation_ns
from repro.radram.system import RADramMemorySystem
from repro.sim import ops as O
from repro.sim.config import MachineConfig
from repro.sim.machine import Machine
from repro.sim.memory import PagedMemory


def make_machine(radram_config=None):
    cfg = radram_config or RADramConfig.reference().with_page_bytes(4096)
    memsys = RADramMemorySystem(cfg)
    machine = Machine(
        memory=PagedMemory(page_bytes=cfg.page_bytes), memsys=memsys
    )
    return machine, memsys


def simple_activate(page_no=0x1000_0000 // 4096, cycles=100, words=1):
    return O.Activate(page_no, words, PageTask.simple(cycles))


class TestActivation:
    def test_activation_charges_dispatch_cost(self):
        machine, memsys = make_machine()
        stats = machine.run(iter([simple_activate(words=5)]))
        expected = activation_ns(
            5, memsys.config, machine.config.dram, machine.config.bus
        )
        assert stats.activation_ns == pytest.approx(expected)
        assert stats.activations == 1

    def test_page_runs_in_parallel_with_processor(self):
        machine, _ = make_machine()
        # 100 logic cycles at 10 ns = 1000 ns of page time; the CPU
        # computes 2000 ns meanwhile, so the wait is free.
        stats = machine.run(
            iter([simple_activate(cycles=100), O.Compute(2000), O.WaitPage(simple_activate().page_no)])
        )
        assert stats.wait_ns == 0.0

    def test_idle_processor_stalls_for_page(self):
        machine, _ = make_machine()
        act = simple_activate(cycles=100)
        stats = machine.run(iter([act, O.WaitPage(act.page_no)]))
        # Page completes 1000 ns after activation ends; processor
        # arrives immediately, so it stalls the full 1000 ns.
        assert stats.wait_ns == pytest.approx(1000.0)
        assert stats.waits == 1

    def test_wait_without_activation_is_noop(self):
        machine, _ = make_machine()
        stats = machine.run(iter([O.WaitPage(12345)]))
        assert stats.total_ns == 0.0

    def test_simulated_stalls_match_figure7_model_exactly(self):
        # K pages, zero processor work between waits: total stall time
        # must equal the analytic model's sum of NO(i) (Figure 7).
        import numpy as np

        from repro.core.model import non_overlap_times

        machine, memsys = make_machine()
        k, cycles = 8, 1000
        acts = [O.Activate(page, 1, PageTask.simple(cycles)) for page in range(k)]
        waits = [O.WaitPage(page) for page in range(k)]
        stats = machine.run(iter(acts + waits))
        t_c = cycles * 10.0
        t_a = activation_ns(1, memsys.config, machine.config.dram, machine.config.bus)
        expected = float(np.sum(non_overlap_times(t_a, 0.0, t_c, k)))
        assert stats.wait_ns == pytest.approx(expected, rel=1e-9)


class TestInterPage:
    def test_blocked_page_serviced_during_wait(self):
        machine, memsys = make_machine()
        page = 0
        task = PageTask.of([Segment(10, CommRequest(nbytes=64)), Segment(10)])
        stats = machine.run(iter([O.Activate(page, 1, task), O.WaitPage(page)]))
        assert stats.interrupts == 1
        assert stats.interrupt_ns > 0
        assert memsys.comm_bytes == 64
        # Total: stall to block point, service, then final segment.
        assert stats.total_ns > stats.activation_ns + 200.0

    def test_interrupt_serviced_while_computing(self):
        machine, _ = make_machine()
        page = 0
        task = PageTask.of([Segment(10, CommRequest(nbytes=4)), Segment(10)])
        # Long compute spans the block point; poll() services it at an
        # op boundary without the processor ever waiting.
        stats = machine.run(
            iter(
                [
                    O.Activate(page, 1, task),
                    O.Compute(500),
                    O.Compute(500),
                    O.WaitPage(page),
                ]
            )
        )
        assert stats.interrupts == 1
        assert stats.wait_ns == 0.0

    def test_batched_service_amortizes_interrupt_entry(self):
        cfg = RADramConfig.reference().with_page_bytes(4096)
        machine, _ = make_machine(cfg)
        # Long first segments: all four pages raise their interrupts
        # while the processor is inside one long compute op, so a
        # single batch services them at the next op boundary.
        task = lambda: PageTask.of([Segment(500, CommRequest(nbytes=4)), Segment(10)])
        ops = [O.Activate(p, 1, task()) for p in range(4)]
        ops += [O.Compute(6000)]
        ops += [O.WaitPage(p) for p in range(4)]
        stats = machine.run(iter(ops))
        assert stats.interrupts == 4
        # 1 entry overhead + 4 copies, not 4 entries.
        copy = 2 * (50.0 + 10.0)
        assert stats.interrupt_ns == pytest.approx(cfg.interrupt_base_ns + 4 * copy)

    def test_functional_copy_applied(self):
        machine, memsys = make_machine()
        mem = machine.memory
        region = mem.alloc_pages(2)
        src = region.base
        dst = region.base + mem.page_bytes
        import numpy as np

        mem.write(src, np.full(16, 9, dtype=np.uint8))
        page_no = src // mem.page_bytes
        task = PageTask.of(
            [Segment(10, CommRequest(nbytes=16, src_vaddr=src, dst_vaddr=dst))]
        )
        machine.run(iter([O.Activate(page_no, 1, task), O.WaitPage(page_no)]))
        assert np.all(mem.read(dst, 16) == 9)


class TestLogicSpeedScaling:
    def test_slower_logic_lengthens_page_time(self):
        # Figure 9: higher divisor = slower logic = longer T_C.
        def wait_time(divisor):
            cfg = (
                RADramConfig.reference()
                .with_page_bytes(4096)
                .with_logic_divisor(divisor)
            )
            machine, _ = make_machine(cfg)
            act = O.Activate(0, 1, PageTask.simple(1000))
            stats = machine.run(iter([act, O.WaitPage(0)]))
            return stats.wait_ns

        assert wait_time(100) > wait_time(10) > wait_time(2)

    def test_reset_clears_page_state(self):
        machine, memsys = make_machine()
        machine.run(iter([simple_activate()]))
        machine.reset_timing()
        assert memsys.subarrays == {}
        assert memsys.comm_bytes == 0
