"""Integration tests for the user-facing RADram Active-Page system."""

import numpy as np
import pytest

from repro.core.errors import ActivationError, BindError
from repro.core.functions import APFunction, PageTask
from repro.radram.api import RADram
from repro.radram.config import RADramConfig


def small_radram(**kwargs):
    cfg = RADramConfig.reference().with_page_bytes(4096)
    for key, value in kwargs.items():
        from dataclasses import replace

        cfg = replace(cfg, **{key: value})
    return RADram(config=cfg)


def fill_function(cycles=100):
    def apply(page, args):
        (value,) = args
        page.data_view(np.uint8)[:] = value

    return APFunction(
        name="fill",
        apply=apply,
        cost=lambda args: PageTask.simple(cycles),
        le_count=50,
        descriptor_words=2,
    )


class TestRADramAPI:
    def test_functional_and_timed_execution(self):
        ap = small_radram()
        ap.ap_alloc("g", 2)
        ap.ap_bind("g", [fill_function()])
        t0 = ap.elapsed_ns
        ap.activate("g", 0, "fill", args=(5,))
        ap.activate("g", 1, "fill", args=(6,))
        ap.wait_all("g")
        assert ap.elapsed_ns > t0
        assert np.all(ap.group("g").page(0).data_view(np.uint8) == 5)
        assert np.all(ap.group("g").page(1).data_view(np.uint8) == 6)

    def test_pages_execute_in_parallel(self):
        # Two pages of work should take much less than twice one page:
        # computations overlap, only dispatch is serial.
        def runtime(n_pages):
            ap = small_radram()
            ap.ap_alloc("g", n_pages)
            ap.ap_bind("g", [fill_function(cycles=10_000)])
            for i in range(n_pages):
                ap.activate("g", i, "fill", args=(1,))
            ap.wait_all("g")
            return ap.elapsed_ns

        t1, t4 = runtime(1), runtime(4)
        assert t4 < 2 * t1

    def test_le_budget_enforced_at_bind(self):
        ap = small_radram()
        ap.ap_alloc("g", 1)
        huge = APFunction(name="huge", apply=lambda p, a: None, le_count=999)
        with pytest.raises(BindError):
            ap.ap_bind("g", [huge])

    def test_reconfiguration_charged_when_configured(self):
        ap_free = small_radram()
        ap_free.ap_alloc("g", 4)
        ap_free.ap_bind("g", [fill_function()])
        assert ap_free.elapsed_ns == 0.0

        ap_paid = small_radram(reconfig_ns_per_page=1000.0)
        ap_paid.ap_alloc("g", 4)
        ap_paid.ap_bind("g", [fill_function()])
        assert ap_paid.elapsed_ns == pytest.approx(4000.0)

    def test_is_done_polls_without_blocking(self):
        ap = small_radram()
        ap.ap_alloc("g", 1)
        ap.ap_bind("g", [fill_function(cycles=1_000_000)])
        ap.activate("g", 0, "fill", args=(1,))
        assert not ap.is_done("g", 0)
        ap.compute(20_000_000)  # 20 ms of processor work
        assert ap.is_done("g", 0)

    def test_results_require_wait(self):
        ap = small_radram()
        ap.ap_alloc("g", 1)
        ap.ap_bind("g", [fill_function()])
        ap.activate("g", 0, "fill", args=(1,))
        with pytest.raises(ActivationError):
            ap.results("g", 0, 1)
        ap.wait("g", 0)  # now legal (no result words written by fill)

    def test_timed_memory_roundtrip(self):
        ap = small_radram()
        group = ap.ap_alloc("g", 1)
        base = group.region.base
        t0 = ap.elapsed_ns
        ap.mem_write(base, np.arange(16, dtype=np.uint8))
        data = ap.mem_read(base, 16)
        assert list(data) == list(range(16))
        assert ap.elapsed_ns > t0
