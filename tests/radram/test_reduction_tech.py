"""Tests for hierarchical reduction and the Section 8 technology study."""

import numpy as np
import pytest

from repro.radram.config import RADramConfig
from repro.radram.reduction import (
    processor_fold_stream,
    reduction_rounds,
    tree_reduce_stream,
)
from repro.radram.system import RADramMemorySystem
from repro.radram.technologies import TECHNOLOGIES, technology_study
from repro.sim import ops as O
from repro.sim.machine import Machine
from repro.sim.memory import PagedMemory

PAGE = 4096


def run_reduce(n_pages, strategy, hardware=False):
    cfg = RADramConfig.reference().with_page_bytes(PAGE)
    if hardware:
        cfg = cfg.with_hardware_comm()
    memsys = RADramMemorySystem(cfg)
    machine = Machine(memory=PagedMemory(page_bytes=PAGE), memsys=memsys)
    region = machine.memory.alloc_pages(n_pages)
    page_nos = list(machine.memory.pages_of(region))
    # Plant one uint64 partial per page (value = page index + 1).
    addrs = []
    for i, page_no in enumerate(page_nos):
        addr = region.base + i * PAGE
        machine.memory.write(addr, np.array([i + 1], dtype=np.uint64).view(np.uint8))
        addrs.append(addr)
    stream = strategy(page_nos, addrs)
    stats = machine.run(iter(stream))
    return machine, stats, addrs


class TestReductionRounds:
    def test_round_counts(self):
        assert reduction_rounds(1) == 0
        assert reduction_rounds(2) == 1
        assert reduction_rounds(8) == 3
        assert reduction_rounds(9) == 4


class TestTreeReduce:
    def test_hardware_tree_moves_partials_functionally(self):
        machine, _, addrs = run_reduce(8, tree_reduce_stream, hardware=True)
        # After the tree, page 0 holds... the copies overwrote page 0's
        # slot with its final partner's value (combine semantics are in
        # logic; the copy is what the memory model shows).  The copies
        # must at least have happened: the final value differs from the
        # planted one or rounds occurred.
        final = int(machine.memory.read(addrs[0], 8).view(np.uint64)[0])
        assert final != 1  # partner data arrived

    def test_processor_mediated_tree_interrupts_per_hop(self):
        _, stats, _ = run_reduce(16, tree_reduce_stream, hardware=False)
        assert stats.interrupts == 15  # K-1 combines

    def test_hardware_tree_never_interrupts(self):
        _, stats, _ = run_reduce(16, tree_reduce_stream, hardware=True)
        assert stats.interrupts == 0

    def test_fold_reads_every_page(self):
        machine, stats, _ = run_reduce(16, processor_fold_stream)
        assert machine.l1d.stats.accesses >= 16

    def test_the_punchline_tree_needs_hardware_comm(self):
        """Processor-mediated trees lose to folding; hardware trees win
        at scale — the Section 10 evaluation this module exists for."""

        def time_of(strategy, hardware):
            _, stats, _ = run_reduce(64, strategy, hardware=hardware)
            return stats.total_ns

        fold = time_of(processor_fold_stream, False)
        tree_mediated = time_of(tree_reduce_stream, False)
        tree_hw = time_of(tree_reduce_stream, True)
        assert tree_mediated > fold
        assert tree_hw < tree_mediated

    def test_single_page_degenerates_to_one_read(self):
        _, stats, _ = run_reduce(1, tree_reduce_stream)
        assert stats.activations == 0


class TestTechnologies:
    def test_catalog_shapes(self):
        assert set(TECHNOLOGIES) == {
            "radram-2001",
            "fpga-sram-merged",
            "asic-macrocell",
            "processor-in-dram",
        }
        for tech in TECHNOLOGIES.values():
            assert tech.max_pages > 0
            assert tech.logic_mhz > 0

    def test_radram_affords_the_largest_problems(self):
        radram = TECHNOLOGIES["radram-2001"]
        assert all(
            t.max_pages <= radram.max_pages for t in TECHNOLOGIES.values()
        )

    def test_study_reproduces_section8_narrative(self):
        # A scalable application: problem capacity is what separates
        # the technologies ("chip cost ... will limit most near-term
        # technologies to substantially smaller problem sizes").
        from repro.apps.registry import get_app

        rows = {r["technology"]: r for r in technology_study(get_app("array-insert"))}
        # Near-term parts are fast per page but capacity-capped: the
        # cheap-capacity RADram reaches the biggest speedup.
        assert rows["radram-2001"]["speedup"] == max(
            r["speedup"] for r in rows.values()
        )
        # The merged FPGA-SRAM part runs out of pages long before the
        # application saturates.
        assert rows["fpga-sram-merged"]["speedup"] < rows["radram-2001"]["speedup"]
        # Interpreted in-DRAM cores pay their efficiency factor.
        assert (
            rows["processor-in-dram"]["effective_logic_mhz"]
            < TECHNOLOGIES["processor-in-dram"].logic_mhz
        )
