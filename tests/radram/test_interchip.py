"""Tests for inter-chip communication penalties (Section 10)."""

from dataclasses import replace

import pytest

from repro.core.functions import CommRequest, PageTask, Segment
from repro.radram.config import RADramConfig
from repro.radram.system import RADramMemorySystem
from repro.sim import ops as O
from repro.sim.machine import Machine
from repro.sim.memory import PagedMemory

PAGE = 4096


def run_comm(src_page: int, dst_page: int, pages_per_chip: int = 4):
    cfg = replace(
        RADramConfig.reference().with_page_bytes(PAGE).with_hardware_comm(),
        pages_per_chip=pages_per_chip,
    )
    memsys = RADramMemorySystem(cfg)
    machine = Machine(memory=PagedMemory(page_bytes=PAGE), memsys=memsys)
    task = PageTask.of(
        [
            Segment(
                10,
                CommRequest(
                    nbytes=64,
                    src_vaddr=src_page * PAGE,
                    dst_vaddr=dst_page * PAGE,
                ),
            ),
            Segment(10),
        ]
    )
    stats = machine.run(iter([O.Activate(dst_page, 1, task), O.WaitPage(dst_page)]))
    return stats, memsys


class TestInterChip:
    def test_same_chip_reference_pays_no_interchip_hop(self):
        stats, memsys = run_comm(src_page=1, dst_page=2)  # both on chip 0
        assert memsys.interchip_requests == 0

    def test_cross_chip_reference_pays_the_hop(self):
        stats_local, _ = run_comm(src_page=1, dst_page=2)
        stats_remote, memsys = run_comm(src_page=1, dst_page=6)  # chips 0, 1
        assert memsys.interchip_requests == 1
        assert stats_remote.total_ns > stats_local.total_ns
        delta = stats_remote.total_ns - stats_local.total_ns
        assert delta == pytest.approx(
            RADramConfig.reference().interchip_hop_ns
        )

    def test_chip_of_mapping(self):
        cfg = replace(RADramConfig.reference(), pages_per_chip=128)
        assert cfg.chip_of(0) == 0
        assert cfg.chip_of(127) == 0
        assert cfg.chip_of(128) == 1

    def test_colocation_matters_for_wavefront_apps(self):
        # The OS frame allocator's co-location policy exists for this:
        # a group split across chips pays inter-chip hops per boundary.
        def total(pages_per_chip):
            cfg = replace(
                RADramConfig.reference().with_page_bytes(PAGE).with_hardware_comm(),
                pages_per_chip=pages_per_chip,
            )
            memsys = RADramMemorySystem(cfg)
            machine = Machine(memory=PagedMemory(page_bytes=PAGE), memsys=memsys)
            ops = []
            for p in range(8):
                comm = CommRequest(
                    nbytes=64, src_vaddr=max(0, p - 1) * PAGE, dst_vaddr=p * PAGE
                )
                task = PageTask.of([Segment(5, comm), Segment(5)])
                ops.append(O.Activate(p, 1, task))
            ops += [O.WaitPage(p) for p in range(8)]
            return machine.run(iter(ops)).total_ns, memsys.interchip_requests

        t_colocated, hops_colocated = total(pages_per_chip=8)
        t_split, hops_split = total(pages_per_chip=1)
        assert hops_colocated == 0
        assert hops_split == 7
        assert t_split > t_colocated
