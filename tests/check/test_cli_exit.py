"""Exit codes: ``repro check`` and failed-sweep reporting in ``repro report``."""

import pytest

import repro.check.runner as runner_mod
from repro.__main__ import main as repro_main
from repro.check.runner import CheckReport, CheckRun
from repro.experiments import harness, report
from repro.experiments.harness import HarnessSettings, run_sweep, speedup_task
from repro.faults import chaos

PAGE = 64 * 1024


class TestCheckVerb:
    def test_clean_app_exits_zero(self, capsys):
        assert repro_main(["check", "database", "--pages", "2"]) == 0
        out = capsys.readouterr().out
        assert "check database [conventional]: ok" in out
        assert "check database [radram]: ok" in out
        assert "CLEAN" in out

    def test_violations_exit_two(self, capsys, monkeypatch):
        dirty = CheckReport(
            runs=[
                CheckRun(
                    app="database",
                    system="radram",
                    violations=[],
                    counts={"race": 2},
                    dropped=0,
                )
            ]
        )
        monkeypatch.setattr(runner_mod, "check_apps", lambda *a, **kw: dirty)
        assert repro_main(["check", "database"]) == 2
        assert "VIOLATIONS FOUND" in capsys.readouterr().out

    def test_unknown_app_is_rejected_by_argparse(self):
        with pytest.raises(SystemExit):
            repro_main(["check", "no-such-app"])


class TestReportExitCode:
    def test_failed_tasks_fail_the_report(self, capsys, monkeypatch):
        def fake_run_all(quick=False, only=None):
            harness.total_failed_tasks += 2
            return []

        monkeypatch.setattr(report, "run_all", fake_run_all)
        assert report.main([]) == 1
        assert "2 sweep task(s) FAILED" in capsys.readouterr().out

    def test_allow_failures_opts_out(self, monkeypatch):
        def fake_run_all(quick=False, only=None):
            harness.total_failed_tasks += 1
            return []

        monkeypatch.setattr(report, "run_all", fake_run_all)
        assert report.main(["--allow-failures"]) == 0

    def test_clean_report_exits_zero_and_resets_stale_counts(self, monkeypatch):
        # Leftover state from an earlier in-process sweep must not
        # fail an unrelated report run.
        monkeypatch.setattr(harness, "total_failed_tasks", 7)
        monkeypatch.setattr(report, "run_all", lambda quick=False, only=None: [])
        assert report.main([]) == 0


class TestFailedTaskAccounting:
    @pytest.fixture
    def chaos_spec(self, tmp_path, monkeypatch):
        def arm(rules):
            spec_path = str(tmp_path / "chaos.json")
            chaos.write_spec(spec_path, str(tmp_path / "chaos-state"), rules)
            monkeypatch.setenv(chaos.CHAOS_ENV, spec_path)

        yield arm
        monkeypatch.delenv(chaos.CHAOS_ENV, raising=False)

    def settings_for(self, tmp_path):
        return HarnessSettings(
            cache_dir=str(tmp_path / "cache"), retries=0, retry_backoff_s=0.01
        )

    def test_failures_accumulate_across_sweeps(self, tmp_path, chaos_spec):
        chaos_spec([{"match": "database", "mode": "raise", "times": 99}])
        harness.reset_failed_tasks()
        task = speedup_task("database", 2.0, page_bytes=PAGE)
        run_sweep([task], settings=self.settings_for(tmp_path))
        assert harness.total_failed_tasks == 1
        run_sweep([task], settings=self.settings_for(tmp_path))
        assert harness.total_failed_tasks == 2
        harness.reset_failed_tasks()
        assert harness.total_failed_tasks == 0

    def test_successful_sweep_adds_nothing(self, tmp_path):
        harness.reset_failed_tasks()
        task = speedup_task("database", 2.0, page_bytes=PAGE)
        outcome = run_sweep([task], settings=self.settings_for(tmp_path))
        assert outcome.complete
        assert harness.total_failed_tasks == 0
