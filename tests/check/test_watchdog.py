"""Deadlock/livelock watchdog: frozen clocks must be diagnosed."""

import pytest

from repro.check import runtime
from repro.check.runtime import CheckError, checking
from repro.core.functions import CommRequest, PageTask, Segment
from repro.radram.config import RADramConfig
from repro.radram.system import RADramMemorySystem
from repro.sim import ops as O
from repro.sim.engine import Engine
from repro.sim.errors import OperationError
from repro.sim.machine import Machine
from repro.sim.memory import PagedMemory
from repro.sim.smp import AtomicRMW, Barrier, SMPMachine

PAGE = 4096


class TestEngineLivelock:
    def _storm(self, engine):
        def callback():
            engine.schedule_at(engine.now, callback)

        engine.schedule_at(0.0, callback)

    def test_frozen_clock_event_storm_flagged(self):
        engine = Engine()
        self._storm(engine)
        with checking(livelock_limit=100) as ck:
            for _ in range(150):
                engine.step()
        assert ck.counts[runtime.WATCHDOG] == 1
        assert "no time advance" in ck.violations[0].message

    def test_strict_mode_breaks_the_storm(self):
        engine = Engine()
        self._storm(engine)
        with pytest.raises(CheckError, match="livelock"):
            with checking(strict=True, livelock_limit=100):
                for _ in range(150):
                    engine.step()

    def test_advancing_clock_is_clean(self):
        engine = Engine()
        for k in range(200):
            engine.schedule_at(float(k), lambda: None)
        with checking(livelock_limit=100) as ck:
            engine.run_until_idle()
        assert ck.total == 0


class TestWaitSpin:
    def test_unserviced_blocked_page_trips_the_watchdog(self, monkeypatch):
        # A page blocks on a processor-mediated CommRequest; with the
        # service path stubbed out, WaitPage would poll forever at a
        # frozen clock.  The watchdog turns that hang into a diagnosis.
        monkeypatch.setattr(
            RADramMemorySystem,
            "_service_pending",
            lambda self, proc, force_page=None: None,
        )
        cfg = RADramConfig.reference().with_page_bytes(PAGE)
        machine = Machine(
            memory=PagedMemory(page_bytes=PAGE), memsys=RADramMemorySystem(cfg)
        )
        task = PageTask.of(
            [
                Segment(100.0, CommRequest(nbytes=64, src_vaddr=PAGE, dst_vaddr=0)),
                Segment(100.0),
            ]
        )
        with pytest.raises(CheckError, match="without the clock advancing"):
            with checking(strict=True, wait_spin_limit=50):
                machine.run(iter([O.Activate(0, 1, task), O.WaitPage(0)]))

    def test_serviced_comm_request_is_clean(self):
        cfg = RADramConfig.reference().with_page_bytes(PAGE)
        machine = Machine(
            memory=PagedMemory(page_bytes=PAGE), memsys=RADramMemorySystem(cfg)
        )
        task = PageTask.of(
            [
                Segment(100.0, CommRequest(nbytes=64, src_vaddr=PAGE, dst_vaddr=0)),
                Segment(100.0),
            ]
        )
        with checking(strict=True, wait_spin_limit=50) as ck:
            machine.run(iter([O.Activate(0, 1, task), O.WaitPage(0)]))
        assert ck.total == 0


class TestSMPDeadlock:
    def make_smp(self, n_cpus=2):
        return SMPMachine(n_cpus, memory=PagedMemory(page_bytes=PAGE))

    def test_diagnosis_names_waiters_and_missing_cpus(self):
        smp = self.make_smp(2)
        lock = smp.memory.alloc_pages(1, name="lock").base
        streams = [
            [AtomicRMW(vaddr=lock, kind="tas"), Barrier(1)],
            [O.Compute(10)],
        ]
        with checking() as ck:
            with pytest.raises(OperationError) as excinfo:
                smp.run(streams)
        message = str(excinfo.value)
        assert "deadlock: every live processor waits" in message
        assert "cpu 0: blocked at Barrier(1)" in message
        assert f"last sync access tas @ 0x{lock:x}" in message
        assert "barrier 1 still missing cpus [1]" in message
        assert "cpus [1] already finished their streams" in message
        # The watchdog records the same diagnosis as a violation.
        assert ck.counts[runtime.WATCHDOG] == 1
        assert ck.violations[0].op == "SMPMachine.run"

    def test_diagnosis_is_always_on_even_without_checker(self):
        assert runtime.CHECKER is None
        smp = self.make_smp(2)
        with pytest.raises(OperationError, match=r"still missing cpus \[1\]"):
            smp.run([[Barrier(1)], [O.Compute(10)]])

    def test_split_barrier_groups_both_reported(self):
        smp = self.make_smp(2)
        with pytest.raises(OperationError) as excinfo:
            smp.run([[Barrier(1)], [Barrier(2)]])
        message = str(excinfo.value)
        assert "Barrier(1)" in message
        assert "Barrier(2)" in message

    def test_completing_barrier_stays_silent(self):
        smp = self.make_smp(2)
        with checking() as ck:
            smp.run([[Barrier(1)], [O.Compute(10), Barrier(1)]])
        assert ck.total == 0
