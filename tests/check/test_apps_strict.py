"""Acceptance: the paper's six applications are sanitizer-clean.

Every (app, system) pair runs under the *strict* checker — any race,
coherence hazard, protocol misstep, or watchdog trip aborts the run.
This is the suite the CI ``sanitizer`` job mirrors at full scale via
``python -m repro check paper-six --strict``.
"""

import pytest

from repro.check import runtime
from repro.check.runner import PAPER_SIX, check_app, check_apps

PAGE = 64 * 1024


@pytest.mark.parametrize("app_name", PAPER_SIX)
def test_paper_app_is_sanitizer_clean(app_name):
    runs = check_app(app_name, n_pages=4.0, page_bytes=PAGE, strict=True)
    assert [r.system for r in runs] == ["conventional", "radram"]
    for run in runs:
        assert run.error is None, f"{app_name}/{run.system}: {run.error}"
        assert run.clean, f"{app_name}/{run.system}: {run.counts}"


def test_checker_is_off_again_after_checked_runs():
    check_app("array-insert", n_pages=2.0, page_bytes=PAGE)
    assert runtime.CHECKER is None


def test_report_renders_one_line_per_run():
    report = check_apps(["database"], n_pages=2.0, page_bytes=PAGE, strict=True)
    assert report.clean
    text = report.render()
    assert "check database [conventional]: ok" in text
    assert "check database [radram]: ok" in text
    assert text.strip().endswith("CLEAN")


def test_total_and_clean_aggregate_across_runs():
    report = check_apps(
        ["median-kernel", "median-total"], n_pages=2.0, page_bytes=PAGE
    )
    assert len(report.runs) == 4
    assert report.total == 0
    assert report.clean
