"""Seeded-violation tests: each detector must fire on a live machine.

Every test builds a small RADram machine and drives a hand-written op
stream that breaks exactly one invariant, then asserts the matching
detector (and only that detector) fired.  Control variants prove the
legal counterpart of each pattern stays clean.
"""

import pytest

from repro.check import runtime
from repro.check.runtime import CheckError, checking
from repro.core.functions import PageTask
from repro.core.page import SYNC_BYTES
from repro.faults.models import HARD_FAULT, FaultConfig, ScheduledFault
from repro.radram.config import RADramConfig
from repro.radram.system import RADramMemorySystem
from repro.sim import ops as O
from repro.sim.machine import Machine
from repro.sim.memory import PagedMemory

PAGE = 4096


def make_machine(fault_cfg=None):
    cfg = RADramConfig.reference().with_page_bytes(PAGE).with_faults(fault_cfg)
    memsys = RADramMemorySystem(cfg)
    machine = Machine(memory=PagedMemory(page_bytes=PAGE), memsys=memsys)
    return machine, memsys


def run_checked(ops, fault_cfg=None, strict=False, **checker_kw):
    machine, memsys = make_machine(fault_cfg)
    with checking(strict=strict, **checker_kw) as ck:
        machine.run(iter(ops))
    return ck, memsys


TASK = PageTask.simple(1000.0)


class TestRaceDetector:
    def test_read_of_inflight_page_races(self):
        ck, _ = run_checked(
            [O.Activate(0, 1, TASK), O.MemRead(128, 8), O.WaitPage(0)]
        )
        assert ck.counts[runtime.RACE] == 1
        (v,) = ck.violations
        assert v.detector == runtime.RACE
        assert v.page == 0
        assert v.op == "MemRead"

    def test_write_to_inflight_page_races(self):
        ck, _ = run_checked(
            [O.Activate(0, 1, TASK), O.MemWrite(128, 8), O.WaitPage(0)]
        )
        assert ck.counts[runtime.RACE] == 1
        assert ck.violations[0].op == "MemWrite"

    def test_strided_and_gather_accesses_race(self):
        ck, _ = run_checked(
            [
                O.Activate(0, 1, TASK),
                O.StridedRead(addr=0, count=4, stride_bytes=64, elem_bytes=4),
                O.GatherRead([256], elem_bytes=4),
                O.WaitPage(0),
            ]
        )
        assert ck.counts[runtime.RACE] == 2

    def test_other_pages_are_fair_game(self):
        ck, _ = run_checked(
            [O.Activate(0, 1, TASK), O.MemRead(PAGE + 128, 8), O.WaitPage(0)]
        )
        assert ck.total == 0

    def test_waitpage_releases_the_spans(self):
        ck, _ = run_checked(
            [O.Activate(0, 1, TASK), O.WaitPage(0), O.MemRead(128, 8)]
        )
        assert ck.total == 0

    def test_declared_working_spans_narrow_the_race_window(self):
        task = PageTask.simple(1000.0, working_spans=((0, 64),))
        clean, _ = run_checked(
            [O.Activate(0, 1, task), O.MemRead(2048, 8), O.WaitPage(0)]
        )
        assert clean.total == 0
        racy, _ = run_checked(
            [O.Activate(0, 1, task), O.MemRead(32, 8), O.WaitPage(0)]
        )
        assert racy.counts[runtime.RACE] == 1

    def test_one_violation_per_op_not_per_element(self):
        addrs = [8 * k for k in range(32)]  # 32 racing gather elements
        ck, _ = run_checked(
            [O.Activate(0, 1, TASK), O.GatherRead(addrs, elem_bytes=4), O.WaitPage(0)]
        )
        assert ck.counts[runtime.RACE] == 1

    def test_strict_mode_aborts_the_run(self):
        with pytest.raises(CheckError, match="unsynchronized read"):
            run_checked(
                [O.Activate(0, 1, TASK), O.MemRead(128, 8), O.WaitPage(0)],
                strict=True,
            )


class TestCoherenceDetector:
    def test_dirty_lines_at_dispatch_flagged(self):
        # An unflushed processor write under the page's working set:
        # the page would compute on stale DRAM (paper Section 4).
        ck, _ = run_checked(
            [O.MemWrite(0, 64), O.Activate(0, 1, TASK), O.WaitPage(0)]
        )
        assert ck.counts[runtime.COHERENCE] == 1
        assert ck.violations[0].op == "Activate"

    def test_flush_range_restores_coherence(self):
        ck, _ = run_checked(
            [
                O.MemWrite(0, 64),
                O.FlushRange(0, 64),
                O.Activate(0, 1, TASK),
                O.WaitPage(0),
            ]
        )
        assert ck.total == 0

    def test_clean_cached_lines_are_fine(self):
        ck, _ = run_checked(
            [O.MemRead(0, 64), O.Activate(0, 1, TASK), O.WaitPage(0)]
        )
        assert ck.total == 0

    def test_stale_sync_read_flagged(self):
        sync = PAGE - SYNC_BYTES
        # Reading the sync words *before* activating caches the line;
        # the post-wait status read then hits the pre-DONE copy.
        ck, _ = run_checked(
            [
                O.MemRead(sync, 4),
                O.Activate(0, 1, TASK),
                O.WaitPage(0),
                O.MemRead(sync, 4),
            ]
        )
        assert ck.counts[runtime.COHERENCE] == 1
        assert "sync words" in ck.violations[0].message

    def test_uncached_sync_read_is_clean(self):
        # The idiomatic app pattern: first sync-word access after the
        # wait misses and fetches fresh data.
        sync = PAGE - SYNC_BYTES
        ck, _ = run_checked(
            [O.Activate(0, 1, TASK), O.WaitPage(0), O.MemRead(sync, 4)]
        )
        assert ck.total == 0


class TestProtocolDetector:
    def test_double_activation_flagged(self):
        ck, _ = run_checked(
            [
                O.Activate(0, 1, TASK),
                O.WaitPage(0),
                O.Activate(1, 1, TASK),
                O.WaitPage(1),
            ]
        )
        assert ck.total == 0
        with pytest.raises(CheckError, match="still in flight"):
            run_checked(
                [O.Activate(0, 1, TASK), O.Activate(0, 1, TASK)], strict=True
            )


class TestFaultsIntegration:
    def test_fault_replay_is_protocol_clean(self):
        # A migration replay restarts an in-flight activation; the
        # checker must understand that handshake, not flag it.
        cfg = FaultConfig(
            schedule=(ScheduledFault(1, 0, HARD_FAULT, in_flight=True),),
            spare_rows=2,
        )
        ck, memsys = run_checked(
            [O.Activate(0, 1, PageTask.simple(50_000.0)), O.WaitPage(0)],
            fault_cfg=cfg,
        )
        assert memsys.fault_counters()["replays"] == 1
        assert ck.total == 0

    def test_degraded_execution_is_clean_and_releases_spans(self):
        cfg = FaultConfig(
            schedule=(ScheduledFault(1, 0, HARD_FAULT, in_flight=True),),
            migration_limit=0,
        )
        ck, memsys = run_checked(
            [
                O.Activate(0, 1, TASK),
                O.WaitPage(0),
                O.MemRead(128, 8),  # page degraded: reads are legal
            ],
            fault_cfg=cfg,
        )
        assert memsys.fault_counters()["degraded_pages"] == 1
        assert ck.total == 0

    def test_replay_with_no_activation_in_flight_flagged(self):
        machine, _ = make_machine()
        with checking() as ck:
            ck.on_replay(5, machine.processor)
        assert ck.counts[runtime.PROTOCOL] == 1
        assert "no activation" in ck.violations[0].message
