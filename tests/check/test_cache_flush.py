"""``FlushRange`` and the cache-side primitives behind the sanitizer."""

import numpy as np
import pytest

from repro.sim import ops as O
from repro.sim.bus import Bus
from repro.sim.cache import Cache, build_hierarchy
from repro.sim.config import BusConfig, CacheConfig, DRAMConfig
from repro.sim.dram import DRAM
from repro.sim.machine import Machine


def make_dram(miss_ns=50.0):
    return DRAM(DRAMConfig(miss_latency_ns=miss_ns), Bus(BusConfig()))


def small_cache(size=1024, assoc=2, line=32, hit=1.0, dram=None):
    dram = dram or make_dram()
    return Cache(
        "L1",
        CacheConfig(size_bytes=size, assoc=assoc, line_bytes=line, hit_ns=hit),
        dram=dram,
    )


class TestDirtyLinesIn:
    def test_reports_only_dirty_lines_in_range(self):
        c = small_cache()
        c.access_line(0, write=True)
        c.access_line(1, write=False)
        c.access_line(2, write=True)
        c.access_line(40, write=True)  # outside the queried range
        assert c.dirty_lines_in(0, 10) == [0, 2]

    def test_no_state_change(self):
        c = small_cache()
        c.access_line(3, write=True)
        before = (c.stats.hits, c.stats.misses, c.stats.writebacks)
        c.dirty_lines_in(0, 100)
        assert (c.stats.hits, c.stats.misses, c.stats.writebacks) == before
        assert c.contains(3)

    def test_works_in_the_vectorized_regime(self):
        c = small_cache()
        # A large batch flips the cache into its matrix representation.
        addrs = np.arange(0, 16, dtype=np.int64)
        c.access_lines(addrs, write=True)
        assert c.dirty_lines_in(0, 15) == list(range(16))
        assert c.dirty_lines_in(4, 7) == [4, 5, 6, 7]

    def test_empty_cache_reports_nothing(self):
        c = small_cache()
        assert c.dirty_lines_in(0, 1000) == []


class TestFlushRange:
    def test_flush_writes_back_and_invalidates(self):
        c = small_cache()
        c.access_line(0, write=True)
        c.access_line(1, write=True)
        cost = c.flush_range(0, 1)
        assert cost > 0.0
        assert c.stats.writebacks == 2
        assert not c.contains(0) and not c.contains(1)
        assert c.dirty_lines_in(0, 100) == []

    def test_clean_lines_invalidate_for_free(self):
        c = small_cache()
        c.access_line(0, write=False)
        assert c.flush_range(0, 0) == 0.0
        assert c.stats.writebacks == 0
        assert not c.contains(0)

    def test_lines_outside_the_range_survive(self):
        c = small_cache()
        c.access_line(0, write=True)
        c.access_line(9, write=True)
        c.flush_range(0, 4)
        assert c.contains(9)
        assert c.dirty_lines_in(0, 100) == [9]

    def test_flush_cascades_into_l2(self):
        dram = make_dram()
        l1d, _, l2 = build_hierarchy(
            CacheConfig(size_bytes=64, assoc=1, line_bytes=32, hit_ns=1.0),
            CacheConfig(size_bytes=1024, assoc=4, line_bytes=32, hit_ns=6.0),
            dram,
        )
        # Dirty line 0 out of L1 into L2, leaving a stale dirty copy
        # below the L1; the flush must sweep both levels.
        l1d.access_line(0, write=True)
        l1d.access_line(2, write=False)  # evicts dirty 0 into L2
        assert l2.dirty_lines_in(0, 0) == [0]
        l1d.flush_range(0, 0)
        assert l2.dirty_lines_in(0, 0) == []

    def test_flush_after_vectorized_batch(self):
        c = small_cache()
        c.access_lines(np.arange(0, 8, dtype=np.int64), write=True)
        c.flush_range(0, 7)
        assert c.dirty_lines_in(0, 100) == []
        assert c.stats.writebacks == 8


class TestFlushRangeOp:
    def test_processor_flush_charges_memory_time(self):
        machine = Machine()
        line = machine.l1d.config.line_bytes
        machine.run(iter([O.MemWrite(0, 4 * line), O.FlushRange(0, 4 * line)]))
        assert machine.l1d.stats.writebacks == 4
        assert machine.l1d.dirty_lines_in(0, 100) == []
        assert machine.processor.stats.mem_ns > 0.0

    def test_zero_byte_flush_is_a_noop(self):
        machine = Machine()
        stats = machine.run(iter([O.FlushRange(0, 0)]))
        assert machine.l1d.stats.writebacks == 0
        assert stats.total_ns == 0.0

    def test_flush_is_deterministic_in_both_regimes(self):
        def run(ops):
            m = Machine()
            m.run(iter(ops))
            return m.l1d.stats.writebacks

        line = 32
        ops = [O.MemWrite(0, 8 * line), O.FlushRange(0, 8 * line)]
        assert run(ops) == run(list(ops))
