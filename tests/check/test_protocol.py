"""Sync-state machine and pager lifecycle checks."""

import numpy as np
import pytest

from repro.check import runtime
from repro.check.runtime import CheckError, checking
from repro.core.sync import SYNC_WORDS, SyncArea, SyncState
from repro.os.paging import Pager


def make_sync(owner=7):
    return SyncArea(np.zeros(SYNC_WORDS, dtype=np.uint32), owner=owner)


class TestSyncTransitions:
    def test_full_legal_lifecycle_is_clean(self):
        sync = make_sync()
        with checking() as ck:
            for state in (
                SyncState.ARMED,
                SyncState.RUNNING,
                SyncState.BLOCKED,
                SyncState.RUNNING,
                SyncState.DONE,
                SyncState.ARMED,  # re-arm after DONE: legal
                SyncState.RUNNING,
                SyncState.DONE,
                SyncState.IDLE,  # any state may reset
            ):
                sync.status = state
        assert ck.total == 0

    def test_skipping_armed_is_invalid(self):
        sync = make_sync()
        with checking() as ck:
            sync.status = SyncState.RUNNING  # IDLE -> RUNNING
        assert ck.counts[runtime.PROTOCOL] == 1
        assert "IDLE -> RUNNING" in ck.violations[0].message
        assert ck.violations[0].page == 7

    def test_done_cannot_jump_back_to_running(self):
        sync = make_sync()
        with checking() as ck:
            sync.status = SyncState.ARMED
            sync.status = SyncState.RUNNING
            sync.status = SyncState.DONE
            sync.status = SyncState.RUNNING
        assert ck.counts[runtime.PROTOCOL] == 1
        assert "DONE -> RUNNING" in ck.violations[0].message

    def test_rearming_an_armed_page_is_double_activation(self):
        sync = make_sync()
        with checking() as ck:
            sync.status = SyncState.ARMED
            sync.status = SyncState.ARMED
        assert ck.counts[runtime.PROTOCOL] == 1
        assert "double activation" in ck.violations[0].message

    def test_other_same_state_writes_are_idempotent(self):
        sync = make_sync()
        with checking() as ck:
            sync.status = SyncState.IDLE
            sync.status = SyncState.ARMED
            sync.status = SyncState.RUNNING
            sync.status = SyncState.RUNNING  # page heartbeat: fine
        assert ck.total == 0

    def test_strict_mode_raises(self):
        sync = make_sync()
        with pytest.raises(CheckError, match="invalid SyncState"):
            with checking(strict=True):
                sync.status = SyncState.BLOCKED


class TestResultReads:
    def test_read_before_done_flagged(self):
        sync = make_sync(owner=3)
        sync.status = SyncState.ARMED
        with checking() as ck:
            sync.read_results(1)
        assert ck.counts[runtime.PROTOCOL] == 1
        assert "ARMED, not DONE" in ck.violations[0].message
        assert ck.violations[0].page == 3

    def test_read_after_done_is_clean(self):
        sync = make_sync()
        sync.status = SyncState.ARMED
        sync.status = SyncState.RUNNING
        sync.status = SyncState.DONE
        sync.write_results([42])
        with checking() as ck:
            assert sync.read_results(1) == [42]
        assert ck.total == 0


class TestPagerLifecycle:
    def test_balanced_computation_is_clean(self):
        pager = Pager(n_frames=2)
        with checking() as ck:
            pager.begin_computation(1)
            pager.end_computation(1)
        assert ck.total == 0

    def test_double_begin_flagged(self):
        pager = Pager(n_frames=2)
        with checking() as ck:
            pager.begin_computation(1)
            pager.begin_computation(1)
        assert ck.counts[runtime.PROTOCOL] == 1
        assert "already" in ck.violations[0].message

    def test_end_without_begin_flagged(self):
        pager = Pager(n_frames=2)
        with checking() as ck:
            pager.end_computation(9)
        assert ck.counts[runtime.PROTOCOL] == 1
        assert "no computation" in ck.violations[0].message

    def test_victim_exhaustion_is_watchdog_diagnosed(self):
        pager = Pager(n_frames=1)
        with checking() as ck:
            pager.begin_computation(1)
            with pytest.raises(RuntimeError) as excinfo:
                pager.touch(2)
        # The error itself names the policy and the stuck pages even
        # with the checker off; with it on, the watchdog counts too.
        assert "cannot evict" in str(excinfo.value)
        assert "1 resident frames" in str(excinfo.value)
        assert ck.counts[runtime.WATCHDOG] == 1

    def test_victim_exhaustion_message_without_checker(self):
        pager = Pager(n_frames=1)
        pager.begin_computation(1)
        with pytest.raises(RuntimeError, match="computing"):
            pager.touch(2)
