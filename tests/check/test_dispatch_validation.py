"""Descriptor-size validation in the dispatch cost model."""

import pytest

from repro.radram.config import RADramConfig
from repro.radram.dispatch import activation_ns, descriptor_bytes
from repro.sim.config import BusConfig, DRAMConfig


def dispatch_cost(words):
    return activation_ns(words, RADramConfig.reference(), DRAMConfig(), BusConfig())


class TestDescriptorValidation:
    def test_negative_word_count_raises(self):
        with pytest.raises(ValueError, match="descriptor_words must be >= 0, got -1"):
            descriptor_bytes(-1)

    def test_activation_ns_propagates_the_validation(self):
        # Previously a negative count was silently clamped to a free
        # dispatch; now both entry points agree it is a caller bug.
        with pytest.raises(ValueError, match="got -3"):
            dispatch_cost(-3)

    def test_zero_words_is_a_valid_bare_dispatch(self):
        assert descriptor_bytes(0) == 0
        assert dispatch_cost(0) == RADramConfig.reference().activation_base_ns

    def test_positive_counts_scale_linearly(self):
        assert descriptor_bytes(5) == 20
        base = dispatch_cost(0)
        per_word = dispatch_cost(1) - base
        assert per_word > 0.0
        assert dispatch_cost(8) == pytest.approx(base + 8 * per_word)
