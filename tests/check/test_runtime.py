"""Unit tests for the sanitizer core: hook lifecycle and bookkeeping."""

import pytest

import repro.core.page as core_page
from repro.check import runtime
from repro.check.runtime import CheckError, Checker, Violation, checking


class TestZeroOverheadContract:
    def test_checker_is_none_by_default(self):
        # The whole zero-overhead-when-off story rests on this: every
        # instrumented hot path sees None and falls through.
        assert runtime.CHECKER is None
        assert not runtime.is_enabled()

    def test_enable_disable_roundtrip(self):
        ck = runtime.enable()
        try:
            assert runtime.CHECKER is ck
            assert runtime.is_enabled()
        finally:
            previous = runtime.disable()
        assert previous is ck
        assert runtime.CHECKER is None

    def test_checking_restores_prior_state(self):
        with checking() as outer:
            assert runtime.CHECKER is outer
            with checking() as inner:
                assert runtime.CHECKER is inner
            assert runtime.CHECKER is outer
        assert runtime.CHECKER is None

    def test_checking_restores_on_error(self):
        with pytest.raises(RuntimeError):
            with checking():
                raise RuntimeError("boom")
        assert runtime.CHECKER is None

    def test_sync_bytes_matches_core_page(self):
        # runtime duplicates the constant to break an import cycle;
        # the two definitions must never drift apart.
        assert runtime.SYNC_BYTES == core_page.SYNC_BYTES


class TestRecording:
    def test_counts_are_per_detector(self):
        ck = Checker()
        ck._violate(runtime.RACE, "a")
        ck._violate(runtime.RACE, "b")
        ck._violate(runtime.PROTOCOL, "c")
        assert ck.counts[runtime.RACE] == 2
        assert ck.counts[runtime.PROTOCOL] == 1
        assert ck.counts[runtime.COHERENCE] == 0
        assert ck.total == 3

    def test_strict_raises_on_first_violation(self):
        ck = Checker(strict=True)
        with pytest.raises(CheckError, match="stale"):
            ck._violate(runtime.COHERENCE, "stale line")

    def test_storage_is_bounded_but_counting_is_not(self):
        ck = Checker(max_violations=3)
        for i in range(10):
            ck._violate(runtime.RACE, f"v{i}")
        assert len(ck.violations) == 3
        assert ck.dropped == 7
        assert ck.counts[runtime.RACE] == 10
        assert "7 further violation(s)" in ck.report()

    def test_violation_render_carries_context(self):
        v = Violation(
            runtime.RACE,
            "overlap",
            page=3,
            addr_lo=0x1000,
            addr_hi=0x1040,
            time_ns=12.5,
            op="MemWrite",
            app="lcs/radram",
        )
        text = v.render()
        assert "[race]" in text
        assert "page=3" in text
        assert "addr=0x1000..0x1040" in text
        assert "op=MemWrite" in text
        assert "app=lcs/radram" in text
        assert "t=12.5ns" in text

    def test_report_summarizes_all_detectors(self):
        ck = Checker()
        ck._violate(runtime.WATCHDOG, "stuck")
        report = ck.report()
        assert "watchdog=1" in report
        assert "(total 1)" in report
        assert "stuck" in report
