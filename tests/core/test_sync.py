"""Unit tests for the synchronization-variable protocol."""

import numpy as np
import pytest

from repro.core.sync import (
    N_ARG_WORDS,
    N_RESULT_WORDS,
    SYNC_WORDS,
    SyncArea,
    SyncState,
)


def make_area():
    return SyncArea(np.zeros(SYNC_WORDS, dtype=np.uint32)), None


class TestSyncArea:
    def test_fresh_area_is_idle(self):
        area, _ = make_area()
        assert area.status == SyncState.IDLE

    def test_status_roundtrip(self):
        area, _ = make_area()
        for state in SyncState:
            area.status = state
            assert area.status == state

    def test_function_id_roundtrip(self):
        area, _ = make_area()
        area.function_id = 3
        assert area.function_id == 3

    def test_args_roundtrip(self):
        area, _ = make_area()
        area.write_args([1, 2, 3])
        assert area.read_args(3) == [1, 2, 3]

    def test_args_wrap_to_32_bits(self):
        area, _ = make_area()
        area.write_args([-1])
        assert area.read_args(1) == [0xFFFFFFFF]

    def test_too_many_args_rejected(self):
        area, _ = make_area()
        with pytest.raises(ValueError):
            area.write_args([0] * (N_ARG_WORDS + 1))

    def test_results_roundtrip(self):
        area, _ = make_area()
        area.write_results([7, 8])
        assert area.read_results(2) == [7, 8]

    def test_too_many_results_rejected(self):
        area, _ = make_area()
        with pytest.raises(ValueError):
            area.write_results([0] * (N_RESULT_WORDS + 1))

    def test_args_and_results_do_not_alias(self):
        area, _ = make_area()
        area.write_args([11] * N_ARG_WORDS)
        area.write_results([22] * N_RESULT_WORDS)
        assert area.read_args(N_ARG_WORDS) == [11] * N_ARG_WORDS
        assert area.read_results(N_RESULT_WORDS) == [22] * N_RESULT_WORDS

    def test_undersized_buffer_rejected(self):
        with pytest.raises(ValueError):
            SyncArea(np.zeros(SYNC_WORDS - 1, dtype=np.uint32))

    def test_protocol_sequence_on_real_page(self):
        # The interface contract: processor arms, page runs, page
        # publishes results and flips DONE, processor reads.
        from repro.core.api import HostEmulationSystem
        from repro.core.functions import APFunction
        from repro.sim.memory import PagedMemory

        sys = HostEmulationSystem(memory=PagedMemory(page_bytes=4096))
        sys.ap_alloc("g", 1)
        observed = []

        def apply(page, args):
            observed.append(page.sync.status)
            return 99

        sys.ap_bind("g", [APFunction(name="f", apply=apply)])
        sys.activate("g", 0, "f")
        assert observed == [SyncState.RUNNING]
        page = sys.group("g").page(0)
        assert page.sync.status == SyncState.DONE
        assert sys.results("g", 0, 1) == [99]
