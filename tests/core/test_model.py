"""Unit + property tests for the Figure 7 analytic model."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.model import (
    non_overlap_times,
    pages_for_complete_overlap,
    partitioned_time,
    predict_speedup,
    speedup_correlation,
    speedup_overall,
    speedup_partitioned,
)

pos_time = st.floats(min_value=0.01, max_value=1e4, allow_nan=False)


class TestNonOverlap:
    def test_single_page_stalls_for_full_tc(self):
        # With one page there is nothing to overlap with.
        no = non_overlap_times(t_a=1.0, t_p=1.0, t_c=100.0, n_pages=1)
        assert no[0] == pytest.approx(100.0)

    def test_many_pages_hide_tc_completely(self):
        # 101 pages: after activating page 1 the processor spends
        # 100 * t_a = t_c activating the rest, so NO(1) = 0, and later
        # pages have even more slack.
        no = non_overlap_times(t_a=1.0, t_p=1.0, t_c=100.0, n_pages=101)
        assert np.all(no == 0.0)

    def test_partial_overlap_shrinks_monotonically(self):
        no = non_overlap_times(t_a=1.0, t_p=2.0, t_c=50.0, n_pages=10)
        # First page stalls the most; later pages benefit from
        # accumulated slack.
        assert no[0] == pytest.approx(50.0 - 9.0)
        assert np.all(np.diff(no) <= 0)

    def test_earlier_stalls_count_as_slack(self):
        # Page 2's gap includes NO(1): stalling on page 1 gave page 2
        # time to compute.
        no = non_overlap_times(t_a=0.0, t_p=0.0, t_c=10.0, n_pages=2)
        assert no[0] == pytest.approx(10.0)
        assert no[1] == pytest.approx(0.0)

    def test_per_page_arrays_supported(self):
        tc = [100.0, 1.0, 1.0]
        no = non_overlap_times(t_a=1.0, t_p=1.0, t_c=tc, n_pages=3)
        assert no[0] == pytest.approx(100.0 - 2.0)
        assert no[1] == 0.0 and no[2] == 0.0

    def test_rejects_bad_lengths(self):
        with pytest.raises(ValueError):
            non_overlap_times([1.0, 2.0], 1.0, 1.0, n_pages=3)

    def test_rejects_negative_times(self):
        with pytest.raises(ValueError):
            non_overlap_times(-1.0, 1.0, 1.0, n_pages=2)

    @given(
        ta=pos_time, tp=pos_time, tc=pos_time, k=st.integers(min_value=1, max_value=200)
    )
    @settings(max_examples=100, deadline=None)
    def test_no_is_never_negative_and_bounded_by_tc(self, ta, tp, tc, k):
        no = non_overlap_times(ta, tp, tc, k)
        assert np.all(no >= 0.0)
        assert np.all(no <= tc + 1e-9)

    @given(ta=pos_time, tp=pos_time, tc=pos_time, k=st.integers(min_value=2, max_value=100))
    @settings(max_examples=100, deadline=None)
    def test_total_stall_never_grows_with_more_pages(self, ta, tp, tc, k):
        """Per-page stall decreases as more pages provide slack."""
        no_k = non_overlap_times(ta, tp, tc, k)
        no_k1 = non_overlap_times(ta, tp, tc, k + 1)
        assert no_k1[0] <= no_k[0] + 1e-9


class TestSpeedup:
    def test_partitioned_speedup_matches_hand_computation(self):
        # K=2, ta=1, tp=1, tc=0 -> denom = 4; conv = 10*1*2 = 20.
        s = speedup_partitioned(10.0, 1.0, 1.0, 1.0, 0.0, 2)
        assert s == pytest.approx(5.0)

    def test_speedup_grows_in_scalable_region(self):
        args = dict(t_conv_per_item=10.0, alpha=1.0, t_a=1.0, t_p=1.0, t_c=1000.0)
        s_small = speedup_partitioned(n_pages=2, **args)
        s_large = speedup_partitioned(n_pages=64, **args)
        assert s_large > s_small

    def test_speedup_saturates_at_large_problem(self):
        args = dict(t_conv_per_item=10.0, alpha=1.0, t_a=1.0, t_p=1.0, t_c=100.0)
        s1 = speedup_partitioned(n_pages=1000, **args)
        s2 = speedup_partitioned(n_pages=2000, **args)
        # Once overlapped, speedup is conv/(ta+tp) per page: constant.
        assert s1 == pytest.approx(s2)
        assert s1 == pytest.approx(10.0 / 2.0)

    def test_amdahl_limits_overall_speedup(self):
        assert speedup_overall(0.5, 1e9) == pytest.approx(2.0, rel=1e-6)
        assert speedup_overall(1.0, 7.0) == pytest.approx(7.0)
        assert speedup_overall(0.0, 7.0) == pytest.approx(1.0)

    def test_amdahl_rejects_bad_fraction(self):
        with pytest.raises(ValueError):
            speedup_overall(1.5, 2.0)

    @given(
        frac=st.floats(min_value=0.0, max_value=1.0),
        sp=st.floats(min_value=0.1, max_value=1e6),
    )
    @settings(max_examples=100, deadline=None)
    def test_amdahl_bounds(self, frac, sp):
        s = speedup_overall(frac, sp)
        assert s <= max(sp, 1.0) + 1e-9
        if sp >= 1.0:
            assert s >= 1.0 - 1e-9


class TestPagesForOverlap:
    def test_activation_bound_case(self):
        # t_a > t_p: the first page is hardest to hide;
        # K ~ t_c / t_a + 1.  (Median filter's shape in Table 4.)
        k = pages_for_complete_overlap(t_a=0.381, t_p=0.580, t_c=3502.0)
        assert 5000 < k < 10000

    def test_postprocessing_bound_case(self):
        # t_p < t_a: the *last* page is hardest; K ~ t_c / t_p.
        # (Array-insert's shape in Table 4.)
        k = pages_for_complete_overlap(t_a=2.058, t_p=0.387, t_c=1250.0)
        assert 2500 < k < 4000

    def test_tiny_tc_needs_one_page(self):
        assert pages_for_complete_overlap(1.0, 1.0, 0.0) == 1

    def test_zero_overheads_never_overlap(self):
        assert pages_for_complete_overlap(0.0, 0.0, 5.0, max_pages=4096) == 4096

    @given(ta=pos_time, tp=pos_time, tc=pos_time)
    @settings(max_examples=50, deadline=None)
    def test_result_is_minimal(self, ta, tp, tc):
        k = pages_for_complete_overlap(ta, tp, tc, max_pages=1 << 20)
        if k < (1 << 20):
            assert float(np.sum(non_overlap_times(ta, tp, tc, k))) == 0.0
            if k > 1:
                assert float(np.sum(non_overlap_times(ta, tp, tc, k - 1))) > 0.0


class TestCorrelation:
    def test_perfect_prediction(self):
        measured = [1.0, 2.0, 4.0, 8.0]
        assert speedup_correlation(measured, measured) == pytest.approx(1.0)

    def test_linear_scaling_is_still_perfect(self):
        assert speedup_correlation([1, 2, 3], [10, 20, 30]) == pytest.approx(1.0)

    def test_poor_prediction_scores_low(self):
        c = speedup_correlation([1, 2, 3, 4], [4, 1, 3, 2])
        assert c < 0.5

    def test_rejects_short_series(self):
        with pytest.raises(ValueError):
            speedup_correlation([1.0], [1.0])

    def test_predict_speedup_is_figure7_special_case(self):
        p = predict_speedup(10.0, 1.0, 1.0, 100.0, 50)
        s = speedup_partitioned(10.0, 1.0, 1.0, 1.0, 100.0, 50)
        assert p == pytest.approx(s)


class TestPartitionedTime:
    def test_sums_all_three_components(self):
        # K=2, ta=1, tp=2, tc=10: NO(1)=10-1=9, NO(2)=max(0,10-(2+9))=0.
        t = partitioned_time(1.0, 2.0, 10.0, 2)
        assert t == pytest.approx(2 * 1.0 + 2 * 2.0 + 9.0)

    @given(ta=pos_time, tp=pos_time, tc=pos_time, k=st.integers(min_value=1, max_value=100))
    @settings(max_examples=50, deadline=None)
    def test_time_at_least_overheads_and_at_least_tc(self, ta, tp, tc, k):
        t = partitioned_time(ta, tp, tc, k)
        assert t >= k * (ta + tp) - 1e-6
        # The kernel cannot finish before the first page's computation.
        assert t >= tc - 1e-6
