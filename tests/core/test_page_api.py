"""Unit tests for pages, groups, sync areas and the AP interface."""

import numpy as np
import pytest

from repro.core.api import HostEmulationSystem
from repro.core.errors import ActivationError, BindError, GroupError
from repro.core.functions import APFunction, PageTask
from repro.core.page import SYNC_BYTES
from repro.core.sync import SyncState
from repro.sim.memory import PagedMemory

PAGE = 4096


def make_system():
    return HostEmulationSystem(memory=PagedMemory(page_bytes=PAGE))


def fill_fn(value=7):
    def apply(page, args):
        page.data_view(np.uint8)[:] = value
        return None

    return APFunction(name="fill", apply=apply, cost=lambda args: PageTask.simple(10))


def count_fn():
    def apply(page, args):
        (needle,) = args
        return int(np.count_nonzero(page.data_view(np.uint32) == needle))

    return APFunction(name="count", apply=apply)


class TestAllocation:
    def test_alloc_creates_n_pages(self):
        sys = make_system()
        group = sys.ap_alloc("g", 4)
        assert len(group) == 4

    def test_repeated_alloc_extends_group(self):
        sys = make_system()
        sys.ap_alloc("g", 2)
        group = sys.ap_alloc("g", 3)
        assert len(group) == 5

    def test_groups_are_separate(self):
        sys = make_system()
        a = sys.ap_alloc("a", 1)
        b = sys.ap_alloc("b", 1)
        assert a.page(0).page_no != b.page(0).page_no

    def test_unknown_group_raises(self):
        with pytest.raises(GroupError):
            make_system().group("nope")

    def test_zero_pages_rejected(self):
        with pytest.raises(GroupError):
            make_system().ap_alloc("g", 0)

    def test_page_index_bounds_checked(self):
        sys = make_system()
        group = sys.ap_alloc("g", 2)
        with pytest.raises(GroupError):
            group.page(2)


class TestPageLayout:
    def test_data_plus_sync_equals_page(self):
        sys = make_system()
        page = sys.ap_alloc("g", 1).page(0)
        assert page.data_bytes == PAGE - SYNC_BYTES

    def test_sync_area_does_not_alias_data(self):
        sys = make_system()
        page = sys.ap_alloc("g", 1).page(0)
        page.data_view(np.uint8)[:] = 0xFF
        assert page.sync.status == SyncState.IDLE

    def test_data_view_typed_and_writable(self):
        sys = make_system()
        page = sys.ap_alloc("g", 1).page(0)
        words = page.data_view(np.uint32)
        words[0] = 0xDEADBEEF
        assert page.data_view(np.uint8)[0] == 0xEF  # little-endian


class TestBinding:
    def test_bind_then_activate(self):
        sys = make_system()
        sys.ap_alloc("g", 1)
        sys.ap_bind("g", [fill_fn()])
        sys.activate("g", 0, "fill")
        page = sys.group("g").page(0)
        assert np.all(page.data_view(np.uint8) == 7)
        assert sys.is_done("g", 0)

    def test_activation_of_unbound_function_raises(self):
        sys = make_system()
        sys.ap_alloc("g", 1)
        sys.ap_bind("g", [fill_fn()])
        with pytest.raises(BindError):
            sys.activate("g", 0, "missing")

    def test_rebind_replaces_function_set(self):
        sys = make_system()
        sys.ap_alloc("g", 1)
        sys.ap_bind("g", [fill_fn()])
        sys.ap_bind("g", [count_fn()])
        with pytest.raises(BindError):
            sys.activate("g", 0, "fill")

    def test_le_budget_enforced(self):
        sys = make_system()
        sys.le_budget = 256
        sys.ap_alloc("g", 1)
        big = APFunction(name="big", apply=lambda p, a: None, le_count=300)
        with pytest.raises(BindError):
            sys.ap_bind("g", [big])

    def test_le_budget_counts_whole_set(self):
        sys = make_system()
        sys.le_budget = 256
        sys.ap_alloc("g", 1)
        f1 = APFunction(name="a", apply=lambda p, a: None, le_count=150)
        f2 = APFunction(name="b", apply=lambda p, a: None, le_count=150)
        with pytest.raises(BindError):
            sys.ap_bind("g", [f1, f2])
        sys.ap_bind("g", [f1])  # fits alone

    def test_duplicate_names_rejected(self):
        sys = make_system()
        sys.ap_alloc("g", 1)
        with pytest.raises(BindError):
            sys.ap_bind("g", [fill_fn(), fill_fn()])


class TestActivationResults:
    def test_result_words_returned(self):
        sys = make_system()
        sys.ap_alloc("g", 1)
        page = sys.group("g").page(0)
        page.data_view(np.uint32)[:10] = 42
        sys.ap_bind("g", [count_fn()])
        sys.activate("g", 0, "count", args=(42,))
        assert sys.results("g", 0, 1) == [10]

    def test_results_before_done_raise(self):
        sys = make_system()
        sys.ap_alloc("g", 1)
        sys.ap_bind("g", [count_fn()])
        with pytest.raises(ActivationError):
            sys.results("g", 0, 1)

    def test_sync_args_visible_to_function(self):
        sys = make_system()
        sys.ap_alloc("g", 1)

        def apply(page, args):
            return page.sync.read_args(1)[0] * 2

        sys.ap_bind("g", [APFunction(name="dbl", apply=apply)])
        sys.activate("g", 0, "dbl", args=(21,))
        assert sys.results("g", 0, 1) == [42]

    def test_read_write_passthrough(self):
        sys = make_system()
        group = sys.ap_alloc("g", 1)
        base = group.region.base
        sys.write(base, np.arange(8, dtype=np.uint8))
        assert list(sys.read(base, 8)) == list(range(8))
