"""Unit tests for Figure 1 region classification."""

import numpy as np
import pytest

from repro.core.model import speedup_partitioned
from repro.core.regions import Region, classify_regions, region_boundaries


def model_curve(t_conv=10.0, ta=1.0, tp=1.0, tc=100.0, ks=None):
    ks = ks or [0.25, 0.5, 1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024]
    speeds = []
    for k in ks:
        pages = max(1, int(k))
        s = speedup_partitioned(t_conv, 1.0, ta, tp, tc, pages)
        if k < 1:
            # Sub-page: same activation cost, less useful work.
            s *= k
        speeds.append(s)
    return ks, speeds


class TestClassification:
    def test_three_regions_appear_in_order(self):
        ks, speeds = model_curve()
        points = classify_regions(ks, speeds)
        labels = [p.region for p in points]
        assert labels[0] == Region.SUB_PAGE
        assert Region.SCALABLE in labels
        assert labels[-1] == Region.SATURATED
        # Once saturated, never back to scalable.
        sat_start = labels.index(Region.SATURATED)
        assert all(l == Region.SATURATED for l in labels[sat_start:])

    def test_boundaries_reported(self):
        ks, speeds = model_curve()
        bounds = region_boundaries(classify_regions(ks, speeds))
        assert bounds[Region.SUB_PAGE] == 0.25
        assert bounds[Region.SCALABLE] > 1
        assert bounds[Region.SATURATED] > bounds[Region.SCALABLE]

    def test_never_saturating_curve_has_no_saturated_points(self):
        ks = [2, 4, 8, 16, 32]
        speeds = [2.0 * k for k in ks]  # pure linear growth
        points = classify_regions(ks, speeds)
        assert all(p.region == Region.SCALABLE for p in points)

    def test_rejects_nonincreasing_pages(self):
        with pytest.raises(ValueError):
            classify_regions([1, 1, 2], [1, 2, 3])

    def test_rejects_nonpositive_speedup(self):
        with pytest.raises(ValueError):
            classify_regions([1, 2], [1.0, 0.0])

    def test_slopes_are_recorded(self):
        ks = [2, 4, 8]
        speeds = [2.0, 4.0, 8.0]
        points = classify_regions(ks, speeds)
        for p in points:
            assert p.slope == pytest.approx(1.0)
