"""Tests for the deterministic fault models (repro.faults.models)."""

import pytest

from repro.faults.models import (
    BIT_FLIP,
    BUS_ERROR,
    DOUBLE_BIT,
    HARD_FAULT,
    LE_DEFECT,
    FaultConfig,
    FaultInjector,
    ScheduledFault,
    expected_page_survival,
)
from repro.sim.errors import ConfigError


class TestFaultConfig:
    def test_defaults_are_disabled(self):
        cfg = FaultConfig()
        assert not cfg.enabled

    def test_any_rate_or_schedule_enables(self):
        assert FaultConfig(bit_flip_rate=0.1).enabled
        assert FaultConfig(hard_fault_rate=0.1).enabled
        assert FaultConfig(bus_error_rate=0.1).enabled
        assert FaultConfig(le_defect_density=10.0).enabled
        assert FaultConfig(
            schedule=(ScheduledFault(1, 0, BIT_FLIP),)
        ).enabled

    @pytest.mark.parametrize(
        "field", ["bit_flip_rate", "double_bit_rate", "hard_fault_rate", "bus_error_rate"]
    )
    def test_rates_must_be_probabilities(self, field):
        with pytest.raises(ConfigError):
            FaultConfig(**{field: -0.1})
        with pytest.raises(ConfigError):
            FaultConfig(**{field: 1.5})

    def test_negative_density_rejected(self):
        with pytest.raises(ConfigError):
            FaultConfig(le_defect_density=-1.0)

    def test_negative_scrub_rejected(self):
        with pytest.raises(ConfigError):
            FaultConfig(scrub_ns=-1.0)

    def test_budgets_must_be_nonnegative(self):
        with pytest.raises(ConfigError):
            FaultConfig(spare_rows=-1)
        with pytest.raises(ConfigError):
            FaultConfig(migration_limit=-1)
        with pytest.raises(ConfigError):
            FaultConfig(n_chips=0)


class TestScheduledFault:
    def test_le_defects_cannot_be_scheduled(self):
        with pytest.raises(ConfigError):
            ScheduledFault(1, 0, LE_DEFECT)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigError):
            ScheduledFault(1, 0, "gamma-ray")

    def test_activation_cycles_start_at_one(self):
        with pytest.raises(ConfigError):
            ScheduledFault(0, 0, BIT_FLIP)


class TestDeterminism:
    """Draws are pure functions of (seed, kind, coordinates)."""

    def test_same_seed_same_history(self):
        a = FaultInjector(FaultConfig(seed=7, bit_flip_rate=0.3, hard_fault_rate=0.2))
        b = FaultInjector(FaultConfig(seed=7, bit_flip_rate=0.3, hard_fault_rate=0.2))
        history_a = [(a.bit_flip(p, c), a.hard_fault(p, c)) for p in range(50) for c in range(1, 5)]
        history_b = [(b.bit_flip(p, c), b.hard_fault(p, c)) for p in range(50) for c in range(1, 5)]
        assert history_a == history_b

    def test_draws_are_call_order_independent(self):
        inj = FaultInjector(FaultConfig(seed=3, bit_flip_rate=0.5))
        forward = [inj.bit_flip(p, 1) for p in range(20)]
        backward = [inj.bit_flip(p, 1) for p in reversed(range(20))]
        assert forward == list(reversed(backward))

    def test_different_seeds_differ(self):
        a = FaultInjector(FaultConfig(seed=0, bit_flip_rate=0.5))
        b = FaultInjector(FaultConfig(seed=1, bit_flip_rate=0.5))
        draws = lambda inj: [inj.bit_flip(p, 1) for p in range(200)]
        assert draws(a) != draws(b)


class TestRateDraws:
    def test_zero_rates_never_fire(self):
        inj = FaultInjector(FaultConfig())
        for p in range(20):
            assert inj.bit_flip(p, 1) is None
            assert not inj.hard_fault(p, 1)
            assert not inj.bus_error(p)
            assert inj.le_defects(p) == 0

    def test_rate_one_always_fires(self):
        inj = FaultInjector(
            FaultConfig(bit_flip_rate=1.0, hard_fault_rate=1.0, bus_error_rate=1.0)
        )
        for p in range(20):
            assert inj.bit_flip(p, 1) == BIT_FLIP
            assert inj.hard_fault(p, 1)
            assert inj.bus_error(p)

    def test_double_bit_takes_priority_in_stacked_draw(self):
        # With double_bit_rate == 1.0 the [0, double) band covers all
        # uniforms, so every flip is the uncorrectable kind.
        inj = FaultInjector(FaultConfig(double_bit_rate=1.0))
        assert inj.bit_flip(0, 1) == DOUBLE_BIT

    def test_empirical_rate_tracks_configured_rate(self):
        inj = FaultInjector(FaultConfig(bit_flip_rate=0.25))
        n = 4000
        hits = sum(inj.bit_flip(p, c) is not None for p in range(200) for c in range(1, 21))
        assert 0.20 < hits / n < 0.30

    def test_le_defect_mean_scales_with_density(self):
        low = FaultInjector(FaultConfig(le_defect_density=100.0))
        high = FaultInjector(FaultConfig(le_defect_density=10_000.0))
        pages = range(200)
        mean_low = sum(low.le_defects(p) for p in pages) / 200
        mean_high = sum(high.le_defects(p) for p in pages) / 200
        assert mean_high > mean_low * 10


class TestSchedules:
    def test_dispatch_schedule_hits_only_its_coordinates(self):
        inj = FaultInjector(
            FaultConfig(schedule=(ScheduledFault(2, 5, HARD_FAULT),))
        )
        assert inj.scheduled(5, 2)[0].kind == HARD_FAULT
        assert inj.scheduled(5, 1) == ()
        assert inj.scheduled(4, 2) == ()
        assert inj.scheduled_in_flight(5, 2) == ()

    def test_in_flight_schedule_is_separate(self):
        inj = FaultInjector(
            FaultConfig(schedule=(ScheduledFault(1, 3, HARD_FAULT, in_flight=True),))
        )
        assert inj.scheduled(3, 1) == ()
        assert inj.scheduled_in_flight(3, 1)[0].in_flight

    def test_take_in_flight_consumes_the_entry(self):
        inj = FaultInjector(
            FaultConfig(schedule=(ScheduledFault(1, 3, BIT_FLIP, in_flight=True),))
        )
        first = inj.take_in_flight(3, 1)
        assert len(first) == 1
        assert inj.take_in_flight(3, 1) == ()

    def test_multiple_faults_stack_on_one_activation(self):
        inj = FaultInjector(
            FaultConfig(
                schedule=(
                    ScheduledFault(1, 0, HARD_FAULT),
                    ScheduledFault(1, 0, HARD_FAULT),
                    ScheduledFault(1, 0, BUS_ERROR),
                )
            )
        )
        assert len(inj.scheduled(0, 1)) == 3


class TestExpectedSurvival:
    def test_zero_density_survives_fully(self):
        assert expected_page_survival(0.0) == 1.0

    def test_monotone_decreasing_in_density(self):
        survivals = [expected_page_survival(d) for d in (0.0, 100.0, 400.0, 800.0)]
        assert survivals == sorted(survivals, reverse=True)
        assert survivals[-1] < 0.2

    def test_matches_the_yield_model_cdf(self):
        from repro.radram.yieldmodel import CHIP_CLASSES, _poisson_cdf

        density, spares, pages = 200.0, 2, 128
        mean = density * CHIP_CLASSES["radram"].area_cm2 / pages
        assert expected_page_survival(density, spares, pages) == pytest.approx(
            _poisson_cdf(spares, mean)
        )

    def test_more_spares_survive_more(self):
        assert expected_page_survival(400.0, spare_le_columns=4) > expected_page_survival(
            400.0, spare_le_columns=1
        )
