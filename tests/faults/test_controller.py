"""Fault tolerance end to end: injected faults against a live machine.

Direct op streams give exact control over which page is activated how
often, so scheduled faults can target precise ``(page, activation)``
coordinates; a few tests run whole applications through
:func:`repro.experiments.runner.run_radram` to cover the integrated
path (global page numbers, many pages, graceful completion).
"""

import pytest

from repro.core.functions import PageTask
from repro.faults.models import (
    BIT_FLIP,
    BUS_ERROR,
    DOUBLE_BIT,
    HARD_FAULT,
    FaultConfig,
    FaultInjector,
    ScheduledFault,
)
from repro.radram.config import RADramConfig
from repro.radram.system import RADramMemorySystem
from repro.sim import ops as O
from repro.sim.machine import Machine
from repro.sim.memory import PagedMemory

PAGE = 4096


def make_machine(fault_cfg=None):
    cfg = RADramConfig.reference().with_page_bytes(PAGE).with_faults(fault_cfg)
    memsys = RADramMemorySystem(cfg)
    return Machine(memory=PagedMemory(page_bytes=PAGE), memsys=memsys), memsys


def run_page(fault_cfg, activations=1, cycles=1000.0, page_no=0):
    """Activate+wait one page ``activations`` times under ``fault_cfg``."""
    machine, memsys = make_machine(fault_cfg)
    ops = []
    for _ in range(activations):
        ops += [O.Activate(page_no, 1, PageTask.simple(cycles)), O.WaitPage(page_no)]
    stats = machine.run(iter(ops))
    return stats, memsys


class TestDisabledIsFree:
    def test_no_faults_means_no_counters(self):
        stats, memsys = run_page(None)
        assert memsys.fault_counters() == {}

    def test_disabled_config_is_bit_identical_to_none(self):
        baseline, _ = run_page(None, activations=3)
        disabled, memsys = run_page(FaultConfig(), activations=3)
        assert disabled.as_dict() == baseline.as_dict()
        # The controller exists but never fired.
        counters = memsys.fault_counters()
        assert all(v == 0.0 for k, v in counters.items() if k != "pages_touched")


class TestECC:
    def test_single_bit_flip_is_scrubbed(self):
        cfg = FaultConfig(schedule=(ScheduledFault(1, 0, BIT_FLIP),))
        stats, memsys = run_page(cfg)
        counters = memsys.fault_counters()
        assert counters["bit_flips"] == 1
        assert counters["corrected"] == 1
        assert counters["scrubs"] == 1
        assert counters["degraded_pages"] == 0
        assert stats.scrub_ns == cfg.scrub_ns

    def test_scrub_latency_is_configurable(self):
        cfg = FaultConfig(schedule=(ScheduledFault(1, 0, BIT_FLIP),), scrub_ns=5_000.0)
        stats, _ = run_page(cfg)
        assert stats.scrub_ns == 5_000.0

    def test_bit_flip_without_ecc_degrades_the_page(self):
        cfg = FaultConfig(schedule=(ScheduledFault(1, 0, BIT_FLIP),), ecc=False)
        stats, memsys = run_page(cfg)
        counters = memsys.fault_counters()
        assert counters["uncorrectable"] == 1
        assert counters["degraded_pages"] == 1
        assert memsys.faults.is_degraded(0)
        assert stats.scrub_ns == 0.0

    def test_double_bit_defeats_ecc(self):
        cfg = FaultConfig(schedule=(ScheduledFault(1, 0, DOUBLE_BIT),))
        _, memsys = run_page(cfg)
        counters = memsys.fault_counters()
        assert counters["uncorrectable"] == 1
        assert counters["degraded_pages"] == 1

    def test_degraded_page_stays_on_the_processor(self):
        cfg = FaultConfig(schedule=(ScheduledFault(1, 0, DOUBLE_BIT),))
        stats, memsys = run_page(cfg, activations=3)
        assert stats.waits == 0  # page logic never ran, nothing to wait on
        assert memsys.fault_counters()["degraded_activations"] == 3
        assert stats.compute_ns > 0  # the processor did the work instead


class TestHardFaults:
    def test_spare_row_absorbs_first_hard_fault(self):
        cfg = FaultConfig(schedule=(ScheduledFault(1, 0, HARD_FAULT),), spare_rows=1)
        stats, memsys = run_page(cfg)
        counters = memsys.fault_counters()
        assert counters["hard_faults"] == 1
        assert counters["row_remaps"] == 1
        assert counters["migrations"] == 0
        assert stats.migration_ns == 0.0

    def test_exhausted_spares_trigger_migration(self):
        cfg = FaultConfig(
            schedule=(
                ScheduledFault(1, 0, HARD_FAULT),
                ScheduledFault(1, 0, HARD_FAULT),
            ),
            spare_rows=1,
            migration_limit=1,
        )
        stats, memsys = run_page(cfg)
        counters = memsys.fault_counters()
        assert counters["row_remaps"] == 1
        assert counters["migrations"] == 1
        assert counters["degraded_pages"] == 0
        assert stats.migration_ns > 0.0

    def test_exhausted_migration_budget_degrades(self):
        cfg = FaultConfig(
            schedule=(ScheduledFault(1, 0, HARD_FAULT),) * 2,
            spare_rows=0,
            migration_limit=1,
        )
        _, memsys = run_page(cfg)
        counters = memsys.fault_counters()
        assert counters["hard_faults"] == 2
        assert counters["row_remaps"] == 0
        assert counters["migrations"] == 1
        assert counters["degraded_pages"] == 1

    def test_migration_restores_spare_rows(self):
        # fault 1 -> spare row; fault 2 -> migrate (fresh spares);
        # fault 3 -> the *new* subarray's spare row absorbs it.
        cfg = FaultConfig(
            schedule=(
                ScheduledFault(1, 0, HARD_FAULT),
                ScheduledFault(1, 0, HARD_FAULT),
                ScheduledFault(2, 0, HARD_FAULT),
            ),
            spare_rows=1,
            migration_limit=1,
        )
        _, memsys = run_page(cfg, activations=2)
        counters = memsys.fault_counters()
        assert counters["row_remaps"] == 2
        assert counters["migrations"] == 1
        assert counters["degraded_pages"] == 0


class TestInFlightFaults:
    def test_in_flight_hard_fault_replays_the_activation(self):
        cfg = FaultConfig(
            schedule=(ScheduledFault(1, 0, HARD_FAULT, in_flight=True),),
            spare_rows=2,  # spares cannot save an in-flight computation
        )
        stats, memsys = run_page(cfg, cycles=50_000.0)
        counters = memsys.fault_counters()
        assert counters["replays"] == 1
        assert counters["migrations"] == 1
        assert counters["row_remaps"] == 0
        baseline, _ = run_page(None, cycles=50_000.0)
        assert stats.total_ns > baseline.total_ns  # migrate + re-run

    def test_in_flight_fault_fires_exactly_once(self):
        cfg = FaultConfig(
            schedule=(ScheduledFault(1, 0, HARD_FAULT, in_flight=True),),
            migration_limit=2,
        )
        _, memsys = run_page(cfg, activations=3)
        assert memsys.fault_counters()["replays"] == 1

    def test_in_flight_fault_past_budget_degrades(self):
        cfg = FaultConfig(
            schedule=(ScheduledFault(1, 0, HARD_FAULT, in_flight=True),),
            migration_limit=0,
        )
        stats, memsys = run_page(cfg, activations=2)
        counters = memsys.fault_counters()
        assert counters["degraded_pages"] == 1
        # The interrupted activation was replayed on the processor.
        assert counters["degraded_activations"] == 2


class TestBusErrors:
    def test_every_transfer_retries_at_rate_one(self):
        cfg = FaultConfig(bus_error_rate=1.0)
        stats, memsys = run_page(cfg, activations=2)
        counters = memsys.fault_counters()
        assert counters["bus_errors"] >= 2
        assert counters["bus_retries"] == counters["bus_errors"]
        baseline, _ = run_page(None, activations=2)
        assert stats.activation_ns > baseline.activation_ns

    def test_scheduled_bus_error_forces_one_retry(self):
        cfg = FaultConfig(
            schedule=(
                ScheduledFault(1, 0, BUS_ERROR),
                ScheduledFault(2, 0, BUS_ERROR),
            )
        )
        _, memsys = run_page(cfg, activations=3)
        assert memsys.fault_counters()["bus_errors"] == 2


class TestLEDefects:
    def test_catastrophic_density_degrades_at_first_touch(self):
        cfg = FaultConfig(le_defect_density=1e9, spare_le_columns=2)
        stats, memsys = run_page(cfg)
        counters = memsys.fault_counters()
        assert counters["le_defects"] > 2
        assert counters["degraded_pages"] == 1
        assert stats.waits == 0  # the page's logic never ran

    def test_defect_draw_matches_the_standalone_injector(self):
        cfg = FaultConfig(seed=11, le_defect_density=20_000.0, spare_le_columns=200)
        _, memsys = run_page(cfg)
        inj = FaultInjector(cfg, pages_per_chip=memsys.config.pages_per_chip)
        predicted = inj.le_defects(0)
        assert predicted > 0  # seed chosen so the draw is non-trivial
        counters = memsys.fault_counters()
        assert counters["le_defects"] == predicted
        assert counters["le_columns_remapped"] == predicted
        assert counters["degraded_pages"] == 0


class TestCounters:
    def test_counters_dict_is_complete_and_float(self):
        from repro.faults.controller import COUNTER_NAMES

        _, memsys = run_page(FaultConfig(bit_flip_rate=1.0))
        counters = memsys.fault_counters()
        for name in COUNTER_NAMES:
            assert isinstance(counters[name], float)
        assert counters["pages_touched"] == 1.0

    def test_metrics_registry_gains_faults_namespace(self):
        from repro.trace.metrics import collect_machine_metrics

        machine, memsys = make_machine(FaultConfig(bit_flip_rate=1.0))
        machine.run(iter([O.Activate(0, 1, PageTask.simple(100.0)), O.WaitPage(0)]))
        flat = collect_machine_metrics(machine).as_dict()
        assert flat["faults.bit_flips"] == 1.0
        assert flat["faults.scrubs"] == 1.0

    def test_no_faults_namespace_when_disabled(self):
        from repro.trace.metrics import collect_machine_metrics

        machine, _ = make_machine(None)
        machine.run(iter([O.Activate(0, 1, PageTask.simple(100.0)), O.WaitPage(0)]))
        flat = collect_machine_metrics(machine).as_dict()
        assert not any(k.startswith("faults.") for k in flat)


class TestTracing:
    def test_fault_instants_reach_the_tracer(self):
        from repro.trace import events as trace_events

        cfg = FaultConfig(
            schedule=(
                ScheduledFault(1, 0, BIT_FLIP),
                ScheduledFault(1, 0, HARD_FAULT),
            )
        )
        with trace_events.tracing() as tracer:
            run_page(cfg)
        instants = [e.name for e in tracer.events() if e.track == "faults" and e.ph == "I"]
        assert "bitflip" in instants
        assert "scrub" in instants
        assert "hard" in instants
        assert "remap" in instants


class TestWholeApplications:
    """Integrated path: real workloads under fault injection."""

    def test_rates_on_run_completes_and_counts(self):
        from repro.apps.registry import get_app
        from repro.experiments.runner import run_radram

        cfg = RADramConfig.reference().with_faults(
            FaultConfig(seed=0, bit_flip_rate=0.5, hard_fault_rate=0.2)
        )
        result = run_radram(get_app("array-insert"), 8, radram_config=cfg)
        assert result.total_ns > 0
        assert result.fault_counters["bit_flips"] > 0
        assert result.fault_counters["pages_touched"] >= 6

    def test_same_seed_is_bit_identical(self):
        from repro.apps.registry import get_app
        from repro.experiments.runner import run_radram

        cfg = RADramConfig.reference().with_faults(
            FaultConfig(seed=42, bit_flip_rate=0.4, hard_fault_rate=0.3)
        )
        a = run_radram(get_app("array-insert"), 8, radram_config=cfg)
        b = run_radram(get_app("array-insert"), 8, radram_config=cfg)
        assert a.total_ns == b.total_ns
        assert a.fault_counters == b.fault_counters
        assert a.stats.as_dict() == b.stats.as_dict()

    def test_reset_rebuilds_a_fresh_controller(self):
        cfg = FaultConfig(schedule=(ScheduledFault(1, 0, DOUBLE_BIT),))
        machine, memsys = make_machine(cfg)
        machine.run(iter([O.Activate(0, 1, PageTask.simple(100.0)), O.WaitPage(0)]))
        assert memsys.fault_counters()["degraded_pages"] == 1
        memsys.reset()
        assert memsys.fault_counters()["degraded_pages"] == 0
        assert not memsys.faults.is_degraded(0)
