"""Tests for the sequence alignment suite."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.align.alignment import GAP_CHAR, needleman_wunsch, smith_waterman
from repro.align.lcs import hirschberg_lcs, is_common_subsequence
from repro.apps.data import lcs_reference, related_sequences

protein = st.text(alphabet="ACDEFG", min_size=0, max_size=18).map(str.encode)
protein_nonempty = st.text(alphabet="ACDEFG", min_size=1, max_size=18).map(str.encode)


def nw_bruteforce(a: bytes, b: bytes, match=2, mismatch=-1, gap=-2) -> int:
    table = [[0] * (len(b) + 1) for _ in range(len(a) + 1)]
    for i in range(1, len(a) + 1):
        table[i][0] = i * gap
    for j in range(1, len(b) + 1):
        table[0][j] = j * gap
    for i in range(1, len(a) + 1):
        for j in range(1, len(b) + 1):
            sub = match if a[i - 1] == b[j - 1] else mismatch
            table[i][j] = max(
                table[i - 1][j - 1] + sub,
                table[i - 1][j] + gap,
                table[i][j - 1] + gap,
            )
    return table[-1][-1]


class TestHirschberg:
    def test_recovers_known_lcs(self):
        assert hirschberg_lcs(b"ABCBDAB", b"BDCABA") in (b"BCAB", b"BCBA", b"BDAB")

    def test_empty_inputs(self):
        assert hirschberg_lcs(b"", b"ABC") == b""
        assert hirschberg_lcs(b"ABC", b"") == b""

    def test_identical_strings(self):
        s = b"PROTEIN"
        assert hirschberg_lcs(s, s) == s

    @given(a=protein, b=protein)
    @settings(max_examples=150, deadline=None)
    def test_result_is_a_common_subsequence_of_dp_length(self, a, b):
        lcs = hirschberg_lcs(a, b)
        assert is_common_subsequence(lcs, a, b)
        assert len(lcs) == lcs_reference(a, b)

    def test_scales_to_real_sequences(self):
        a, b = related_sequences(300, seed=0)
        lcs = hirschberg_lcs(a, b)
        assert is_common_subsequence(lcs, a, b)
        assert len(lcs) == lcs_reference(a, b)


class TestNeedlemanWunsch:
    def test_identical_strings_align_perfectly(self):
        r = needleman_wunsch(b"ACDEFG", b"ACDEFG")
        assert r.score == 2 * 6
        assert r.aligned_a == r.aligned_b == b"ACDEFG"
        assert r.identity() == 1.0

    def test_gap_inserted_for_deletion(self):
        r = needleman_wunsch(b"ACDG", b"ACG")
        assert r.aligned_a == b"ACDG"
        assert r.aligned_b.count(GAP_CHAR) == 1

    def test_alignment_strings_have_equal_length(self):
        r = needleman_wunsch(b"AAAA", b"CC")
        assert len(r.aligned_a) == len(r.aligned_b)

    def test_score_matches_alignment_columns(self):
        a, b = b"ACDEF", b"ADF"
        r = needleman_wunsch(a, b)
        score = 0
        for x, y in zip(r.aligned_a, r.aligned_b):
            if x == GAP_CHAR or y == GAP_CHAR:
                score += -2
            elif x == y:
                score += 2
            else:
                score += -1
        assert score == r.score

    def test_bad_scoring_rejected(self):
        with pytest.raises(ValueError):
            needleman_wunsch(b"A", b"A", match=-1)

    @given(a=protein, b=protein)
    @settings(max_examples=100, deadline=None)
    def test_score_matches_bruteforce(self, a, b):
        assert needleman_wunsch(a, b).score == nw_bruteforce(a, b)

    @given(a=protein, b=protein)
    @settings(max_examples=60, deadline=None)
    def test_degapped_alignment_reproduces_inputs(self, a, b):
        r = needleman_wunsch(a, b)
        assert bytes(ch for ch in r.aligned_a if ch != GAP_CHAR) == a
        assert bytes(ch for ch in r.aligned_b if ch != GAP_CHAR) == b


class TestSmithWaterman:
    def test_finds_embedded_common_substring(self):
        r = smith_waterman(b"XXXACDEFGYYY", b"QQACDEFGPP")
        assert r.aligned_a == b"ACDEFG"
        assert r.aligned_b == b"ACDEFG"
        assert r.score == 2 * 6

    def test_spans_locate_the_region(self):
        a, b = b"XXXACDEFGYYY", b"QQACDEFGPP"
        r = smith_waterman(a, b)
        assert a[r.span_a[0] : r.span_a[1]] == b"ACDEFG"
        assert b[r.span_b[0] : r.span_b[1]] == b"ACDEFG"

    def test_unrelated_strings_score_low_but_nonnegative(self):
        r = smith_waterman(b"AAAA", b"CCCC")
        assert r.score >= 0

    @given(a=protein, b=protein)
    @settings(max_examples=100, deadline=None)
    def test_local_score_at_least_global(self, a, b):
        # Local alignment can always do at least as well as 0 and at
        # least as well as the best global sub-alignment.
        local = smith_waterman(a, b).score
        assert local >= 0
        if a and b:
            assert local >= max(0, needleman_wunsch(a, b).score)

    @given(core=protein_nonempty, pad=protein)
    @settings(max_examples=60, deadline=None)
    def test_perfect_core_always_found(self, core, pad):
        a = pad + core + pad
        local = smith_waterman(a, core).score
        assert local >= 2 * len(core)


class TestTimedAlignment:
    def test_radram_beats_conventional(self):
        from repro.align.timed import align_timed

        a, b = related_sequences(256, seed=1)
        conv = align_timed(a, b, system="conventional")
        rad = align_timed(a, b, system="radram")
        assert rad.result.score == conv.result.score
        assert rad.total_ns < conv.total_ns

    def test_local_and_global_both_supported(self):
        from repro.align.timed import align_timed

        a, b = related_sequences(64, seed=2)
        for algorithm in ("global", "local"):
            timed = align_timed(a, b, algorithm=algorithm, system="radram")
            assert timed.total_ns > 0

    def test_unknown_algorithm_rejected(self):
        from repro.align.timed import align_timed

        with pytest.raises(ValueError):
            align_timed(b"A", b"A", algorithm="quantum")
