"""Tests for the trace event core (ring buffer, global tracer)."""

import pytest

from repro.trace import events


@pytest.fixture(autouse=True)
def _tracing_disabled():
    """Every test starts (and ends) with the global tracer off."""
    events.disable()
    yield
    events.disable()


class TestTracer:
    def test_emission_helpers_produce_typed_events(self):
        tr = events.Tracer()
        tr.complete("cpu", "compute", 10.0, 25.0)
        tr.begin("cpu.phase", "post", 25.0, page=3)
        tr.end("cpu.phase", "post", 30.0)
        tr.instant("page/1", "activate", 12.0, words=2)
        tr.counter("cache.L1D", "misses", 30.0, 7)
        phases = [e.ph for e in tr]
        assert phases == ["X", "B", "E", "I", "C"]

        span = tr.events()[0]
        assert span.track == "cpu" and span.name == "compute"
        assert span.ts == 10.0 and span.dur == 15.0

        counter = tr.events()[-1]
        assert counter.args == {"value": 7}

    def test_argless_events_carry_none_not_empty_dict(self):
        tr = events.Tracer()
        tr.instant("cpu", "tick", 0.0)
        assert tr.events()[0].args is None

    def test_len_iter_and_clear(self):
        tr = events.Tracer()
        for i in range(5):
            tr.instant("t", "e", float(i))
        assert len(tr) == 5
        assert [e.ts for e in tr] == [0.0, 1.0, 2.0, 3.0, 4.0]
        tr.clear()
        assert len(tr) == 0 and tr.dropped == 0

    def test_ring_buffer_bounds_memory_and_counts_drops(self):
        tr = events.Tracer(capacity=3)
        for i in range(10):
            tr.instant("t", "e", float(i))
        assert len(tr) == 3
        assert tr.dropped == 7
        # Oldest-first drop: the newest three survive.
        assert [e.ts for e in tr.events()] == [7.0, 8.0, 9.0]

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            events.Tracer(capacity=0)


class TestGlobalTracer:
    def test_disabled_by_default(self):
        assert events.TRACER is None
        assert not events.is_enabled()

    def test_enable_installs_and_disable_returns_it(self):
        tr = events.enable()
        assert events.TRACER is tr and events.is_enabled()
        assert events.disable() is tr
        assert events.TRACER is None

    def test_tracing_context_restores_previous_tracer(self):
        outer = events.enable()
        with events.tracing() as inner:
            assert events.TRACER is inner
            assert inner is not outer
        assert events.TRACER is outer

    def test_tracing_context_restores_on_exception(self):
        with pytest.raises(RuntimeError):
            with events.tracing():
                raise RuntimeError("boom")
        assert events.TRACER is None

    def test_tracing_context_capacity(self):
        with events.tracing(capacity=2) as tr:
            for i in range(5):
                tr.instant("t", "e", float(i))
        assert len(tr) == 2 and tr.dropped == 3
