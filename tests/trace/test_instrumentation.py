"""End-to-end tests: a traced machine run emits the expected events.

These exercise the instrumentation hooks threaded through the simulator
core (engine, processor, caches, DRAM, bus) and the RADram layer, and
prove the trace-native Gantt path is equivalent to the legacy
memory-system path.
"""

import pytest

from repro.core.functions import PageTask
from repro.radram.config import RADramConfig
from repro.radram.system import RADramMemorySystem
from repro.sim import ops as O
from repro.sim.machine import Machine
from repro.sim.memory import PagedMemory
from repro.trace import events as trace_events
from repro.viz.gantt import (
    page_intervals,
    page_intervals_from_events,
    render_gantt,
    render_gantt_events,
)


def build_machine(page_bytes=4096):
    cfg = RADramConfig.reference().with_page_bytes(page_bytes)
    memsys = RADramMemorySystem(cfg)
    machine = Machine(memory=PagedMemory(page_bytes=page_bytes), memsys=memsys)
    return machine, memsys


def page_ops(n_pages=3, cycles=500):
    ops = [O.Activate(p, 1, PageTask.simple(cycles)) for p in range(n_pages)]
    ops += [O.WaitPage(p) for p in range(n_pages)]
    return ops


def traced_run(n_pages=3, cycles=500):
    machine, memsys = build_machine()
    with trace_events.tracing() as tracer:
        stats = machine.run(iter(page_ops(n_pages, cycles)))
    return tracer.events(), memsys, stats


class TestMachineInstrumentation:
    def test_untraced_run_emits_nothing(self):
        machine, _ = build_machine()
        assert trace_events.TRACER is None
        machine.run(iter(page_ops()))  # must not blow up nor emit

    def test_traced_run_covers_the_machine(self):
        events, _, _ = traced_run()
        tracks = {e.track for e in events}
        assert "cpu" in tracks  # processor charge spans
        assert any(t.startswith("page/") for t in tracks)  # RADram layer
        names = {(e.track, e.name) for e in events}
        assert ("page/0", "activate") in names
        assert any(
            n == "compute" and t.startswith("page/") for t, n in names
        )

    def test_cpu_spans_named_after_charge_categories(self):
        events, _, stats = traced_run()
        cpu_spans = [
            e for e in events if e.ph == "X" and e.track == "cpu"
        ]
        assert cpu_spans
        assert {e.name for e in cpu_spans} <= {
            "total", "compute", "mem", "activation", "wait", "interrupt"
        }
        # Span durations on the cpu track reconcile with MachineStats.
        total = sum(e.dur for e in cpu_spans)
        assert total == pytest.approx(stats.busy_ns + stats.wait_ns)

    def test_page_compute_spans_match_memsys_intervals(self):
        events, memsys, _ = traced_run(n_pages=4)
        assert page_intervals_from_events(events) == page_intervals(memsys)

    def test_gantt_from_events_matches_gantt_from_memsys(self):
        events, memsys, stats = traced_run(n_pages=4)
        assert render_gantt_events(events, stats) == render_gantt(
            memsys, stats
        )

    def test_traced_run_timing_identical_to_untraced(self):
        machine, _ = build_machine()
        untraced = machine.run(iter(page_ops()))
        machine2, _ = build_machine()
        with trace_events.tracing():
            traced = machine2.run(iter(page_ops()))
        assert traced.as_dict() == untraced.as_dict()

    def test_rerun_does_not_duplicate_page_spans(self):
        machine, memsys = build_machine()
        with trace_events.tracing() as tracer:
            machine.run(iter(page_ops(n_pages=2)))
            first = len(
                [e for e in tracer.events() if e.name == "compute"]
            )
            machine.run(iter(page_ops(n_pages=2)))
        compute = [e for e in tracer.events() if e.name == "compute"]
        # Second run flushes only its own new intervals.
        assert len(compute) == 2 * first

    def test_cache_batches_and_memory_counters_appear(self):
        # Drive the cache hierarchy through explicit memory references.
        machine, _ = build_machine()
        refs = [O.MemRead(i * 64, 64) for i in range(128)]
        with trace_events.tracing() as tracer:
            machine.run(iter(refs))
        events = tracer.events()
        cache_tracks = {
            e.track for e in events if e.track.startswith("cache.")
        }
        assert cache_tracks  # batched cache instrumentation fired
        counters = {
            (e.track, e.name) for e in events if e.ph == "C"
        }
        assert ("dram", "reads") in counters
        assert ("bus", "bytes") in counters
