"""Tests for the Chrome/Perfetto JSON and CSV exporters."""

import json

from repro.trace.events import Event, Tracer
from repro.trace.export import (
    CSV_HEADER,
    summarize,
    to_chrome_trace,
    to_csv,
    write_chrome_trace,
    write_csv,
)


def _sample_events():
    return [
        Event("X", 1000.0, 500.0, "cpu", "compute", None),
        Event("B", 1500.0, 0.0, "cpu.phase", "post", {"page": 1}),
        Event("E", 1800.0, 0.0, "cpu.phase", "post", None),
        Event("I", 1200.0, 0.0, "page/0", "activate", {"words": 2}),
        Event("C", 1800.0, 0.0, "cache.L1D", "misses", {"value": 3}),
        Event("X", 1300.0, 400.0, "page/0", "compute", None),
    ]


class TestChromeTrace:
    def test_document_shape(self):
        doc = to_chrome_trace(_sample_events())
        assert set(doc) == {"traceEvents", "displayTimeUnit", "otherData"}
        assert doc["otherData"]["generator"] == "repro.trace"

    def test_phase_mapping_and_microsecond_timestamps(self):
        by_ph = {}
        for entry in to_chrome_trace(_sample_events())["traceEvents"]:
            by_ph.setdefault(entry["ph"], []).append(entry)
        # "X" keeps ts/dur, converted ns -> us.
        span = next(e for e in by_ph["X"] if e["cat"] == "cpu")
        assert span["ts"] == 1.0 and span["dur"] == 0.5
        # "I" becomes a thread-scoped lowercase instant.
        (instant,) = by_ph["i"]
        assert instant["s"] == "t" and instant["args"] == {"words": 2}
        # "C" carries a single named series.
        (counter,) = by_ph["C"]
        assert counter["args"] == {"misses": 3}
        assert "B" in by_ph and "E" in by_ph

    def test_tracks_become_named_threads_cpu_first(self):
        doc = to_chrome_trace(_sample_events())
        meta = [e for e in doc["traceEvents"] if e["ph"] == "M"]
        names = [
            e["args"]["name"] for e in meta if e["name"] == "thread_name"
        ]
        assert set(names) == {"cpu", "cpu.phase", "page/0", "cache.L1D"}
        # cpu tracks are assigned the lowest tids (default Perfetto view).
        tids = {
            e["args"]["name"]: e["tid"]
            for e in meta
            if e["name"] == "thread_name"
        }
        assert tids["cpu"] < tids["page/0"]
        assert any(e["name"] == "process_name" for e in meta)

    def test_tracer_source_records_drop_accounting(self):
        tr = Tracer(capacity=2)
        for i in range(5):
            tr.instant("t", "e", float(i))
        doc = to_chrome_trace(tr)
        assert doc["otherData"]["dropped_events"] == 3
        assert doc["otherData"]["capacity"] == 2

    def test_write_round_trips_through_json_loads(self, tmp_path):
        path = tmp_path / "trace.json"
        write_chrome_trace(str(path), _sample_events(), metadata={"run": "x"})
        doc = json.loads(path.read_text())
        assert doc["traceEvents"]
        assert doc["otherData"]["run"] == "x"


class TestCsv:
    def test_header_and_rows(self):
        text = to_csv(_sample_events())
        lines = text.strip().splitlines()
        assert lines[0] == CSV_HEADER
        assert len(lines) == 1 + len(_sample_events())
        assert lines[1] == "X,cpu,compute,1000,500,"

    def test_args_json_encoded_and_quoted(self):
        event = Event("I", 1.0, 0.0, "t", "e", {"a": 1, "b": 2})
        (row,) = to_csv([event]).strip().splitlines()[1:]
        # Commas inside the JSON payload are CSV-quoted.
        assert row.endswith('"{""a"": 1, ""b"": 2}"')

    def test_write_csv(self, tmp_path):
        path = tmp_path / "trace.csv"
        write_csv(str(path), _sample_events())
        assert path.read_text().startswith(CSV_HEADER)


class TestSummarize:
    def test_counts_and_span_totals(self):
        s = summarize(_sample_events())
        assert s["events"] == 6.0
        assert s["spans"] == 2.0
        assert s["instants"] == 1.0
        assert s["counters"] == 1.0
        assert s["span_ns.cpu"] == 500.0
        # page/<n> tracks fold into one bounded "page" total.
        assert s["span_ns.page"] == 400.0

    def test_tracer_source_adds_dropped(self):
        tr = Tracer(capacity=1)
        tr.instant("t", "a", 0.0)
        tr.instant("t", "b", 1.0)
        assert summarize(tr)["dropped"] == 1.0

    def test_all_values_are_floats(self):
        assert all(
            isinstance(v, float) for v in summarize(_sample_events()).values()
        )
