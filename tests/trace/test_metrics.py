"""Tests for the counter/histogram registry and the canonical-stats bridge."""

import pytest

from repro.core.functions import PageTask
from repro.radram.config import RADramConfig
from repro.radram.system import RADramMemorySystem
from repro.sim import ops as O
from repro.sim.machine import Machine
from repro.sim.memory import PagedMemory
from repro.sim.stats import MachineStats
from repro.trace.events import Tracer
from repro.trace.metrics import (
    Histogram,
    MetricsRegistry,
    collect_machine_metrics,
    stats_metrics,
)


class TestRegistry:
    def test_counter_is_memoized_by_name(self):
        reg = MetricsRegistry()
        c = reg.counter("cache.L1D.misses")
        c.add()
        c.add(2.0)
        assert reg.counter("cache.L1D.misses") is c
        assert reg.as_dict()["cache.L1D.misses"] == 3.0

    def test_namespace_prefixes_and_nests(self):
        reg = MetricsRegistry()
        ns = reg.namespace("cache").namespace("L1D")
        ns.counter("hits").set(5.0)
        assert reg.as_dict() == {"cache.L1D.hits": 5.0}

    def test_emit_counters_samples_into_tracer(self):
        reg = MetricsRegistry()
        reg.counter("dram.reads").set(4.0)
        reg.counter("bus.bytes").set(128.0)
        tr = Tracer()
        assert reg.emit_counters(tr, ts=7.0) == 2
        evs = tr.events()
        assert all(e.ph == "C" and e.ts == 7.0 for e in evs)
        assert {(e.track, e.name, e.args["value"]) for e in evs} == {
            ("dram", "reads", 4.0),
            ("bus", "bytes", 128.0),
        }


class TestHistogram:
    def test_binning_and_overflow(self):
        h = Histogram("lat", edges=[10.0, 100.0])
        for v in (1.0, 9.0, 50.0, 500.0):
            h.observe(v)
        assert h.counts == [2, 1, 1]
        assert h.n == 4
        assert h.mean == pytest.approx(140.0)

    def test_as_dict_has_edge_overflow_count_mean(self):
        h = Histogram("lat", edges=[10.0])
        h.observe(3.0)
        d = h.as_dict()
        assert d == {
            "lat.le_10": 1.0,
            "lat.overflow": 0.0,
            "lat.count": 1.0,
            "lat.mean": 3.0,
        }

    def test_unsorted_edges_rejected(self):
        with pytest.raises(ValueError):
            Histogram("bad", edges=[10.0, 1.0])
        with pytest.raises(ValueError):
            Histogram("bad", edges=[])

    def test_registry_histograms_land_in_as_dict(self):
        reg = MetricsRegistry()
        reg.namespace("cpu").histogram("lat", [10.0]).observe(2.0)
        assert reg.as_dict()["cpu.lat.count"] == 1.0


def _run_small_machine(n_pages=3, cycles=500):
    cfg = RADramConfig.reference().with_page_bytes(4096)
    memsys = RADramMemorySystem(cfg)
    machine = Machine(memory=PagedMemory(page_bytes=4096), memsys=memsys)
    ops = [O.Activate(p, 1, PageTask.simple(cycles)) for p in range(n_pages)]
    ops += [O.WaitPage(p) for p in range(n_pages)]
    stats = machine.run(iter(ops))
    return machine, stats


class TestCanonicalBridge:
    def test_stats_metrics_mirrors_machine_stats(self):
        stats = MachineStats()
        stats.charge("compute_ns", 10.0)
        stats.charge("wait_ns", 5.0)
        d = stats_metrics(stats).as_dict()
        assert d["cpu.compute_ns"] == 10.0
        assert d["cpu.wait_ns"] == 5.0
        # Every MachineStats.as_dict key is mirrored under cpu.*
        assert set(d) == {f"cpu.{k}" for k in stats.as_dict()}

    def test_collect_machine_metrics_reads_canonical_values(self):
        machine, stats = _run_small_machine()
        d = collect_machine_metrics(machine).as_dict()
        # Values come FROM the canonical stats objects, not a shadow count.
        assert d["cpu.total_ns"] == stats.total_ns
        assert d["dram.reads"] == float(machine.dram.reads)
        assert d["bus.bytes"] == float(machine.bus.bytes_transferred)
        assert d["cache.L1D.hits"] == float(machine.l1d.stats.hits)
        assert d["radram.activations"] == float(
            machine.memsys.total_activations
        )
        assert d["radram.pages"] == 3.0
        assert d["radram.page_busy_ns"] > 0.0

    def test_collect_into_existing_registry(self):
        machine, _ = _run_small_machine(n_pages=1)
        reg = MetricsRegistry()
        reg.counter("custom.thing").set(1.0)
        out = collect_machine_metrics(machine, reg)
        assert out is reg
        d = reg.as_dict()
        assert "custom.thing" in d and "cpu.total_ns" in d
