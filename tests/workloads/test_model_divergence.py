"""Differential oracle regression: simulation vs the Figure 7 model.

Generated workloads must stay within each generator's documented
tolerance of the analytic model (``docs/workloads.md``), and generated
tasks must execute bit-identically whether the sweep runs serially or
across pool workers — the fuzzer's verdicts would otherwise depend on
``--jobs``.
"""

import pytest

from repro.experiments.harness import HarnessSettings, run_sweep
from repro.workloads import FUZZ_PAGE_BYTES, FuzzCase, get_generator, run_case

#: Six applications x two generated parameter points (the default
#: operating point and one deliberately off-center point).
POINTS = [
    ("database", {"pages": 3.0, "records": 0, "selectivity": 0.3}),
    ("median-kernel", {"pages": 2.5, "noise": 0.4, "byte_flips": 8}),
    ("dynamic-prog", {"pages": 1.5, "similarity": 0.5}),
    ("matrix-simplex", {"pages": 4.0, "density": 0.5}),
    ("array-insert", {"pages": 2.0, "position": 0.8, "key_density": 0.2}),
    ("mpeg-mmx", {"pages": 3.5, "amplitude": 1.7, "byte_flips": 16}),
]
SIX_APPS = [name for name, _ in POINTS]


@pytest.mark.parametrize("name", SIX_APPS)
@pytest.mark.parametrize("which", ["default", "offcenter"])
def test_measured_within_documented_tolerance(name, which):
    gen = get_generator(name)
    params = (
        gen.default_params()
        if which == "default"
        else gen.clamp(dict(POINTS[SIX_APPS.index(name)][1]))
    )
    case = FuzzCase(generator=name, params=params, seed=11)
    results = {o.oracle: o for o in run_case(case)}
    model = results["model"]
    assert model.ok, f"{name} at {params}: {model.detail}"
    assert model.metric <= gen.model_tolerance
    # The differential run also has to be functionally sound.
    assert results["equivalence"].ok, results["equivalence"].detail
    assert results["checker"].ok, results["checker"].detail


def test_generated_tasks_jobs1_vs_jobs2_bit_identical():
    tasks = [
        get_generator(name).task(
            gen_params, seed=5, page_bytes=FUZZ_PAGE_BYTES
        )
        for name, gen_params in POINTS[:4]
    ]
    serial = run_sweep(tasks, settings=HarnessSettings(jobs=1, use_cache=False))
    pooled = run_sweep(tasks, settings=HarnessSettings(jobs=2, use_cache=False))
    for a, b in zip(serial, pooled):
        assert a.values == b.values  # bit-identical floats
