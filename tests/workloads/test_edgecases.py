"""Edge-of-the-box workloads must be strict-clean on both systems.

The generator axes deliberately reach degenerate datasets — empty
sparse rows, a single-record database, extreme density skew, a pure-
noise image, zero-amplitude frames.  Each must run under the strict
runtime sanitizer without violations on both memory systems, and both
versions must still agree functionally.
"""

import pytest

from repro.apps.registry import get_app
from repro.check.runner import check_app
from repro.experiments.runner import run_conventional, run_radram
from repro.workloads import FUZZ_PAGE_BYTES, get_generator

PAGE = FUZZ_PAGE_BYTES

EDGE_CASES = [
    ("database", {"pages": 0.5, "records": 1, "selectivity": 1.0},
     "single-record database, every record matching"),
    ("database", {"pages": 2.0, "records": 0, "selectivity": 0.0},
     "zero planted matches"),
    ("matrix-simplex", {"pages": 2.0, "density": 0.0},
     "fully sparse: zero-length rows"),
    ("matrix-simplex", {"pages": 1.0, "density": 1.0},
     "fully dense rows"),
    ("matrix-boeing", {"pages": 2.0, "density": 0.0, "skew": 1.0},
     "empty Boeing rows"),
    ("matrix-boeing", {"pages": 2.0, "density": 2.0, "skew": 20.0},
     "extreme interface/interior skew at max density"),
    ("median-kernel", {"pages": 0.5, "noise": 1.0, "byte_flips": 64},
     "pure impulse noise plus byte mutations"),
    ("median-kernel", {"pages": 0.5, "noise": 0.0, "byte_flips": 0},
     "noise-free gradient"),
    ("dynamic-prog", {"pages": 0.5, "similarity": 0.0},
     "unrelated sequences"),
    ("dynamic-prog", {"pages": 0.5, "similarity": 1.0},
     "identical sequences"),
    ("array-insert", {"pages": 0.5, "position": 0.0, "key_density": 0.0},
     "insert at the head, no planted keys"),
    ("array-insert", {"pages": 0.5, "position": 1.0, "key_density": 1.0},
     "insert at the tail, every word a key"),
    ("array-find", {"pages": 0.5, "position": 0.5, "key_density": 0.0},
     "find with zero occurrences"),
    ("mpeg-mmx", {"pages": 0.5, "amplitude": 0.0, "byte_flips": 0},
     "all-zero frames (zero-length value range)"),
    ("mpeg-mmx", {"pages": 0.5, "amplitude": 2.0, "byte_flips": 64},
     "saturation-dominated frames plus byte mutations"),
]


@pytest.mark.parametrize(
    "name,params,label",
    EDGE_CASES,
    ids=[f"{n}-{lbl.split(',')[0].replace(' ', '-')}" for n, _, lbl in EDGE_CASES],
)
def test_edge_case_strict_clean_on_both_systems(name, params, label):
    gen = get_generator(name)
    n_pages, wparams = gen.split(params)
    runs = check_app(
        name,
        n_pages=n_pages,
        page_bytes=PAGE,
        strict=True,
        seed=3,
        params=wparams,
    )
    assert len(runs) == 2
    for run in runs:
        assert run.clean, (
            f"{name} [{run.system}] ({label}): {run.counts}, {run.error}"
        )


@pytest.mark.parametrize(
    "name,params,label",
    EDGE_CASES,
    ids=[f"{n}-{lbl.split(',')[0].replace(' ', '-')}" for n, _, lbl in EDGE_CASES],
)
def test_edge_case_systems_agree(name, params, label):
    gen = get_generator(name)
    n_pages, wparams = gen.split(params)
    app = get_app(name)
    conv = run_conventional(
        app, n_pages, page_bytes=PAGE, functional=True, seed=3,
        cap_pages=None, params=wparams,
    )
    rad = run_radram(
        app, n_pages, page_bytes=PAGE, functional=True, seed=3, params=wparams
    )
    app.check_equivalence(conv.workload, rad.workload)
