"""Cache-keying regression: generated workloads can never alias.

The sweep cache is content-addressed; a key collision between a fixed
dataset and a generated one (or between two generator versions) would
silently serve stale results.  ``SweepTask.key()`` must therefore
cover ``workload_params`` and the ``generator`` version tag.
"""

from repro.experiments import harness
from repro.experiments.harness import (
    HarnessSettings,
    SweepTask,
    run_sweep,
    speedup_task,
)
from repro.workloads import FUZZ_PAGE_BYTES, get_generator

PAGE = FUZZ_PAGE_BYTES


def test_params_change_the_key():
    plain = speedup_task("database", 2.0, page_bytes=PAGE)
    generated = speedup_task(
        "database", 2.0, page_bytes=PAGE, params={"selectivity": 0.5}
    )
    assert plain.key() != generated.key()


def test_each_param_value_keys_separately():
    a = speedup_task(
        "database", 2.0, page_bytes=PAGE, params={"selectivity": 0.25}
    )
    b = speedup_task(
        "database", 2.0, page_bytes=PAGE, params={"selectivity": 0.75}
    )
    assert a.key() != b.key()


def test_generator_tag_changes_the_key():
    v1 = speedup_task(
        "database", 2.0, page_bytes=PAGE,
        params={"selectivity": 0.5}, generator="database/v1",
    )
    v2 = speedup_task(
        "database", 2.0, page_bytes=PAGE,
        params={"selectivity": 0.5}, generator="database/v2",
    )
    assert v1.key() != v2.key()


def test_params_normalize_order_insensitively():
    a = SweepTask(
        "database", 2.0, page_bytes=PAGE,
        workload_params={"selectivity": 0.5, "records": 64},
    )
    b = SweepTask(
        "database", 2.0, page_bytes=PAGE,
        workload_params=(("records", 64.0), ("selectivity", 0.5)),
    )
    assert a.workload_params == b.workload_params
    assert a.key() == b.key()
    assert a == b


def test_cache_poisoning_regression(tmp_path):
    """A warm fixed-dataset cache must not satisfy a generated task.

    Historical hazard: before ``workload_params`` joined the key, the
    second sweep below would *hit* and return the fixed dataset's
    numbers for the generated workload.
    """
    settings = HarnessSettings(cache_dir=str(tmp_path / "cache"))
    plain = speedup_task("database", 2.0, page_bytes=PAGE)
    first = run_sweep([plain], settings=settings)
    assert first.stats.misses == 1

    generated = speedup_task(
        "database", 2.0, page_bytes=PAGE,
        params={"selectivity": 0.9}, generator=get_generator("database").tag,
    )
    second = run_sweep([generated], settings=settings)
    assert second.stats.hits == 0 and second.stats.misses == 1

    # Both tasks now own distinct cache entries (no aliasing on disk).
    assert plain.key() != generated.key()
    cache = harness.ResultCache(settings.resolve_cache_dir())
    assert len(cache.entries()) == 2

    # And both entries now coexist: re-running each hits its own entry.
    warm_plain = run_sweep([plain], settings=settings)
    warm_gen = run_sweep([generated], settings=settings)
    assert warm_plain[0].cached and warm_plain[0].values == first[0].values
    assert warm_gen[0].cached and warm_gen[0].values == second[0].values


def test_generated_task_roundtrips_through_cache(tmp_path):
    settings = HarnessSettings(cache_dir=str(tmp_path / "cache"))
    gen = get_generator("matrix-boeing")
    task = gen.task(
        {"pages": 2.0, "density": 0.5, "skew": 3.0},
        seed=2,
        page_bytes=PAGE,
    )
    cold = run_sweep([task], settings=settings)
    warm = run_sweep([task], settings=settings)
    assert warm[0].cached
    assert warm[0].values == cold[0].values
