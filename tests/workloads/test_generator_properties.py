"""Property suite for the parametric workload generators.

Three guarantees, per generator:

* **Bit-identity** — the same ``(seed, params)`` produces the same
  dataset on every call, and in a pool worker process (the harness
  farms generated tasks out to workers, so cross-process drift would
  silently split sweeps).
* **Seed sensitivity** — distinct seeds produce distinct datasets.
* **Monotone axes** — each declared axis moves its observable in the
  documented direction (the axes are *meaningful*, not decorative).
"""

import hashlib
import random
from concurrent.futures import ProcessPoolExecutor

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.data import SparseVectorPair
from repro.apps.registry import get_app
from repro.workloads import FUZZ_PAGE_BYTES, GENERATORS, get_generator

GEN_NAMES = sorted(GENERATORS)


def dataset_digest(name: str, params, seed: int) -> str:
    """SHA-256 over every array/bytes datum of the generated workload."""
    gen = get_generator(name)
    n_pages, wparams = gen.split(params)
    app = get_app(gen.app_name)
    w = app.workload(
        n_pages, FUZZ_PAGE_BYTES, functional=True, seed=seed, params=wparams
    )
    h = hashlib.sha256()

    def feed(value):
        if isinstance(value, np.ndarray):
            h.update(value.tobytes())
        elif isinstance(value, (bytes, bytearray)):
            h.update(bytes(value))
        elif isinstance(value, (list, tuple)):
            for item in value:
                feed(item)
        elif isinstance(value, SparseVectorPair):
            for arr in (value.idx_a, value.val_a, value.idx_b, value.val_b):
                h.update(arr.tobytes())
        elif isinstance(value, (int, float, str)):
            h.update(repr(value).encode())

    for key in sorted(w.data):
        h.update(key.encode())
        feed(w.data[key])
    return h.hexdigest()


def _axis_point(gen, draws):
    """A parameter point from hypothesis unit-interval draws."""
    params = {}
    for ax, u in zip(gen.all_axes(), draws):
        params[ax.name] = ax.clamp(ax.lo + u * (ax.hi - ax.lo))
    return gen.clamp(params)


@pytest.mark.parametrize("name", GEN_NAMES)
@given(
    draws=st.lists(
        st.floats(0.0, 1.0, allow_nan=False), min_size=4, max_size=4
    ),
    seed=st.integers(0, 2**31 - 1),
)
@settings(max_examples=10, deadline=None)
def test_same_seed_and_params_bit_identical(name, draws, seed):
    gen = get_generator(name)
    params = _axis_point(gen, draws)
    assert dataset_digest(name, params, seed) == dataset_digest(
        name, params, seed
    )


@pytest.mark.parametrize("name", GEN_NAMES)
def test_pool_worker_matches_in_process(name):
    gen = get_generator(name)
    params = gen.default_params()
    local = dataset_digest(name, params, seed=123)
    with ProcessPoolExecutor(max_workers=1) as pool:
        remote = pool.submit(dataset_digest, name, params, 123).result()
    assert local == remote


@pytest.mark.parametrize("name", GEN_NAMES)
def test_distinct_seeds_differ(name):
    gen = get_generator(name)
    params = gen.default_params()
    assert dataset_digest(name, params, 0) != dataset_digest(name, params, 1)


@pytest.mark.parametrize("name", GEN_NAMES)
def test_declared_axes_are_monotone(name):
    """Axis lo -> hi moves the observable in the declared direction,
    strictly across the endpoints and weakly through the midpoint."""
    gen = get_generator(name)
    assert gen.monotone, f"{name}: no monotone declarations"
    for axis_name, observable, direction in gen.monotone:
        ax = gen.axis(axis_name)
        values = []
        for setting in (ax.lo, (ax.lo + ax.hi) / 2.0, ax.hi):
            params = gen.default_params()
            params[axis_name] = ax.clamp(setting)
            obs = gen.observe(params, seed=9, page_bytes=FUZZ_PAGE_BYTES)
            values.append(direction * obs[observable])
        assert values[0] <= values[1] <= values[2], (
            f"{name}.{axis_name} -> {observable}: {values} not monotone"
        )
        assert values[0] < values[2], (
            f"{name}.{axis_name} -> {observable}: endpoints equal ({values})"
        )


@pytest.mark.parametrize("name", GEN_NAMES)
@given(
    draws=st.lists(
        st.floats(-2.0, 3.0, allow_nan=False), min_size=4, max_size=4
    )
)
@settings(max_examples=20, deadline=None)
def test_clamp_is_idempotent_and_in_range(name, draws):
    gen = get_generator(name)
    wild = {
        ax.name: ax.lo + u * (ax.hi - ax.lo)
        for ax, u in zip(gen.all_axes(), draws)
    }
    clamped = gen.clamp(wild)
    assert gen.clamp(clamped) == clamped
    for ax in gen.all_axes():
        assert ax.lo <= clamped[ax.name] <= ax.hi
        if ax.integer:
            assert clamped[ax.name] == round(clamped[ax.name])


@pytest.mark.parametrize("name", GEN_NAMES)
def test_sampling_and_mutation_stay_in_range(name):
    gen = get_generator(name)
    rng = random.Random(4)
    point = gen.default_params()
    for _ in range(50):
        point = gen.mutate(point, rng) if rng.random() < 0.5 else gen.sample(rng)
        assert gen.clamp(point) == point


@pytest.mark.parametrize("name", GEN_NAMES)
def test_task_carries_params_and_generator_tag(name):
    gen = get_generator(name)
    params = gen.default_params()
    task = gen.task(params, seed=3, page_bytes=FUZZ_PAGE_BYTES)
    assert task.generator == gen.tag
    n_pages, wparams = gen.split(params)
    assert task.n_pages == n_pages
    assert task.params_dict() == wparams
    assert "pages" not in dict(task.workload_params)
