"""The fuzz loop: reproducibility, planted-bug discovery, shrinking.

The acceptance contract for ``python -m repro fuzz``:

* the candidate sequence is a pure function of the seed;
* a planted bug (a deliberately broken tolerance) is found, shrunk to
  a minimal parameter point, written as a JSON case file, and the
  file replays to the same failure;
* a clean tree fuzzes clean across all three oracles.
"""

import json

import pytest

from repro import __main__ as cli
from repro.workloads import (
    FuzzCase,
    load_case_file,
    replay_case,
    run_case,
    run_fuzz,
    shrink_case,
)
from repro.workloads.base import PAGES_AXIS, get_generator

GENEROUS_BOX = 600.0  # never the binding constraint in tests


class TestDeterminism:
    def test_same_seed_same_candidate_sequence(self):
        a = run_fuzz(seed=5, time_box_s=GENEROUS_BOX, max_cases=12)
        b = run_fuzz(seed=5, time_box_s=GENEROUS_BOX, max_cases=12)
        assert a.cases_run == b.cases_run == 12
        assert a.candidates == b.candidates
        assert len(a.findings) == len(b.findings)

    def test_different_seed_different_sequence(self):
        a = run_fuzz(seed=5, time_box_s=GENEROUS_BOX, max_cases=8)
        b = run_fuzz(seed=6, time_box_s=GENEROUS_BOX, max_cases=8)
        assert a.candidates != b.candidates

    def test_max_cases_bounds_the_run(self):
        report = run_fuzz(seed=1, time_box_s=GENEROUS_BOX, max_cases=5)
        assert report.cases_run == 5
        assert len(report.candidates) == 5


class TestCleanTree:
    def test_smoke_run_is_clean_across_all_oracles(self):
        """The acceptance smoke: zero violations on an unmodified tree."""
        report = run_fuzz(seed=0, time_box_s=GENEROUS_BOX, max_cases=32)
        assert report.clean, report.render()
        assert report.cases_run == 32


class TestPlantedBug:
    """A deliberately broken tolerance must be found and shrunk."""

    BROKEN_SCALE = 0.01  # dynamic-prog tolerance 0.95 -> 0.0095

    def test_found_shrunk_and_replayable(self, tmp_path):
        out = tmp_path / "findings"
        report = run_fuzz(
            seed=3,
            time_box_s=GENEROUS_BOX,
            max_cases=4,
            apps=["dynamic-prog"],
            tolerance_scale=self.BROKEN_SCALE,
            out_dir=str(out),
        )
        assert report.findings, "planted bug not found"
        finding = report.findings[0]
        assert any(o.oracle == "model" for o in finding.failures)

        # Shrunk to the minimal failing point: smallest problem size,
        # similarity back at its default.
        shrunk = finding.shrunk.params
        assert shrunk["pages"] == PAGES_AXIS.lo
        assert shrunk["similarity"] == get_generator("dynamic-prog").axis(
            "similarity"
        ).default

        # The case file replays to the same failure...
        assert finding.path is not None
        payload = json.loads(open(finding.path).read())
        assert payload["tag"] == "dynamic-prog/v1"
        assert payload["fuzz_seed"] == 3
        verdicts = replay_case(finding.path, tolerance_scale=self.BROKEN_SCALE)
        assert any(o.oracle == "model" and not o.ok for o in verdicts)

        # ...and is clean once the "bug" (the broken tolerance) is fixed.
        fixed = replay_case(finding.path, tolerance_scale=1.0)
        assert all(o.ok for o in fixed)

    def test_shrink_is_deterministic(self):
        case = FuzzCase(
            generator="dynamic-prog",
            params={"pages": 4.3, "similarity": 0.2},
            seed=77,
        )
        a, evals_a = shrink_case(case, tolerance_scale=self.BROKEN_SCALE)
        b, evals_b = shrink_case(case, tolerance_scale=self.BROKEN_SCALE)
        assert a == b and evals_a == evals_b

    def test_shrunk_case_still_fails_and_is_smaller(self):
        case = FuzzCase(
            generator="dynamic-prog",
            params={"pages": 5.5, "similarity": 0.15},
            seed=42,
        )
        assert any(
            not o.ok for o in run_case(case, self.BROKEN_SCALE)
        ), "case must fail before shrinking"
        shrunk, _ = shrink_case(case, tolerance_scale=self.BROKEN_SCALE)
        assert any(not o.ok for o in run_case(shrunk, self.BROKEN_SCALE))
        assert shrunk.params["pages"] <= case.params["pages"]


class TestCaseFiles:
    def test_bare_case_payload_is_accepted(self, tmp_path):
        path = tmp_path / "bare.json"
        case = FuzzCase(
            generator="database",
            params={"pages": 1.0, "records": 4, "selectivity": 1.0},
            seed=9,
        )
        path.write_text(json.dumps(case.to_dict()))
        assert load_case_file(str(path)) == case


class TestCLI:
    def test_fuzz_clean_exit_zero(self):
        rc = cli.main(
            ["fuzz", "--seed", "1", "--max-cases", "6", "--time-box", "600"]
        )
        assert rc == 0

    def test_fuzz_findings_exit_one(self, tmp_path):
        rc = cli.main(
            [
                "fuzz", "--seed", "3", "--max-cases", "2",
                "--time-box", "600",
                "--apps", "dynamic-prog",
                "--tolerance-scale", "0.01",
                "--out", str(tmp_path / "f"),
            ]
        )
        assert rc == 1

    def test_replay_reproduces_exit_two(self, tmp_path):
        out = tmp_path / "f"
        cli.main(
            [
                "fuzz", "--seed", "3", "--max-cases", "2",
                "--time-box", "600",
                "--apps", "dynamic-prog",
                "--tolerance-scale", "0.01",
                "--out", str(out),
            ]
        )
        case_files = sorted(out.glob("case-*.json"))
        assert case_files
        rc = cli.main(
            [
                "fuzz", "--replay", str(case_files[0]),
                "--tolerance-scale", "0.01",
            ]
        )
        assert rc == 2
        assert cli.main(["fuzz", "--replay", str(case_files[0])]) == 0

    def test_smoke_profile_runs(self):
        rc = cli.main(["fuzz", "--smoke", "--seed", "2", "--max-cases", "8"])
        assert rc == 0


@pytest.mark.parametrize("oracle", ["checker", "equivalence", "model"])
def test_every_oracle_reports_on_a_default_case(oracle):
    case = FuzzCase(
        generator="database",
        params=get_generator("database").default_params(),
        seed=1,
    )
    names = [o.oracle for o in run_case(case)]
    assert oracle in names
