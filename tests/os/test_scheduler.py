"""Tests for multi-process Active-Page scheduling and isolation."""

import pytest

from repro.os.scheduler import IsolationError, Process, Scheduler


def make_scheduler(priorities=(1, 1)):
    sched = Scheduler()
    for pid, priority in enumerate(priorities):
        sched.register(Process(pid=pid, priority=priority))
        sched.grant(pid, f"group{pid}")
    return sched


class TestIsolation:
    def test_cross_process_activation_rejected(self):
        sched = make_scheduler()
        with pytest.raises(IsolationError):
            sched.submit(0, "group1", 0, duration_ns=100.0)

    def test_own_group_accepted(self):
        sched = make_scheduler()
        sched.submit(0, "group0", 0, duration_ns=100.0)

    def test_unknown_pid_rejected(self):
        sched = make_scheduler()
        with pytest.raises(KeyError):
            sched.submit(99, "group0", 0, 1.0)

    def test_duplicate_pid_rejected(self):
        sched = make_scheduler()
        with pytest.raises(ValueError):
            sched.register(Process(pid=0))


class TestScheduling:
    def test_all_requests_complete(self):
        sched = make_scheduler()
        for i in range(5):
            sched.submit(0, "group0", i, duration_ns=10_000.0)
            sched.submit(1, "group1", i, duration_ns=10_000.0)
        makespan = sched.run()
        assert sched.process(0).completed == 5
        assert sched.process(1).completed == 5
        assert makespan >= 10 * Scheduler.DISPATCH_NS

    def test_page_computations_overlap(self):
        # 16 long activations: makespan ~ dispatch + one duration, not
        # 16 durations — pages run in parallel.
        sched = make_scheduler(priorities=(1,))
        for i in range(16):
            sched.submit(0, "group0", i, duration_ns=1e6)
        makespan = sched.run()
        assert makespan < 16e6 / 4
        assert sched.max_parallelism > 8

    def test_round_robin_is_fair_for_equal_priorities(self):
        sched = make_scheduler(priorities=(1, 1))
        for i in range(50):
            sched.submit(0, "group0", i, 1000.0)
            sched.submit(1, "group1", i, 1000.0)
        sched.run()
        shares = sched.fairness()
        assert shares[0] == pytest.approx(0.5)
        assert shares[1] == pytest.approx(0.5)

    def test_priority_weights_dispatch_share(self):
        sched = Scheduler()
        sched.register(Process(pid=0, priority=3))
        sched.register(Process(pid=1, priority=1))
        sched.grant(0, "a")
        sched.grant(1, "b")
        # Keep both queues long enough to observe the ratio.
        for i in range(60):
            sched.submit(0, "a", i, 1000.0)
        for i in range(20):
            sched.submit(1, "b", i, 1000.0)
        sched.run()
        assert sched.process(0).dispatched == 60
        assert sched.process(1).dispatched == 20

    def test_empty_run_is_zero(self):
        sched = make_scheduler()
        assert sched.run() == 0.0
