"""Tests for physical frame allocation policies."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.os.frames import Frame, FrameAllocator, OutOfFramesError


class TestAllocation:
    def test_allocates_requested_count(self):
        alloc = FrameAllocator(n_chips=4, frames_per_chip=8)
        frames = alloc.allocate("g", 5)
        assert len(frames) == 5
        assert alloc.used_frames == 5
        assert alloc.free_frames == 27

    def test_exhaustion_raises(self):
        alloc = FrameAllocator(n_chips=1, frames_per_chip=4)
        alloc.allocate("a", 3)
        with pytest.raises(OutOfFramesError):
            alloc.allocate("b", 2)

    def test_release_group_returns_frames(self):
        alloc = FrameAllocator(n_chips=2, frames_per_chip=4)
        alloc.allocate("g", 6)
        assert alloc.release_group("g") == 6
        assert alloc.free_frames == 8

    def test_double_release_rejected(self):
        alloc = FrameAllocator(n_chips=1, frames_per_chip=2)
        (frame,) = alloc.allocate("g", 1)
        alloc.release(frame)
        with pytest.raises(KeyError):
            alloc.release(frame)

    def test_bad_policy_rejected(self):
        with pytest.raises(ValueError):
            FrameAllocator(1, 1, policy="chaotic")


class TestPolicies:
    def test_colocate_minimizes_chips_spanned(self):
        alloc = FrameAllocator(n_chips=4, frames_per_chip=8, policy="co-locate")
        alloc.allocate("g", 8)
        assert alloc.chips_spanned("g") == 1

    def test_colocate_spills_to_second_chip_when_needed(self):
        alloc = FrameAllocator(n_chips=4, frames_per_chip=8, policy="co-locate")
        alloc.allocate("g", 12)
        assert alloc.chips_spanned("g") == 2

    def test_colocate_beats_first_fit_after_fragmentation(self):
        def fragment(policy):
            alloc = FrameAllocator(n_chips=4, frames_per_chip=8, policy=policy)
            # Small groups scattered, then released in part.
            for i in range(8):
                alloc.allocate(f"s{i}", 3)
            for i in range(0, 8, 2):
                alloc.release_group(f"s{i}")
            alloc.allocate("big", 8)
            return alloc.chips_spanned("big")

        assert fragment("co-locate") <= fragment("first-fit")

    @given(
        requests=st.lists(st.integers(min_value=1, max_value=6), min_size=1, max_size=10),
    )
    @settings(max_examples=50, deadline=None)
    def test_no_frame_double_allocated(self, requests):
        alloc = FrameAllocator(n_chips=4, frames_per_chip=8)
        seen = set()
        for i, n in enumerate(requests):
            if n > alloc.free_frames:
                break
            for frame in alloc.allocate(f"g{i}", n):
                assert frame not in seen
                seen.add(frame)
        assert alloc.used_frames == len(seen)

    @given(n=st.integers(min_value=1, max_value=32))
    @settings(max_examples=30, deadline=None)
    def test_free_plus_used_is_constant(self, n):
        alloc = FrameAllocator(n_chips=4, frames_per_chip=8)
        total = alloc.free_frames
        if n <= total:
            alloc.allocate("g", n)
        assert alloc.free_frames + alloc.used_frames == total
