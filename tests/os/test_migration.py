"""Fault-driven remap paths: frame retirement/migration and pager moves.

Also holds the end-to-end determinism contract: one fault seed must
produce bit-identical machine statistics across repeated runs *and*
across harness parallelism (``--jobs 1`` vs a process pool).
"""

import pytest

from repro.os.frames import Frame, FrameAllocator, OutOfFramesError
from repro.os.paging import Pager, SwapCosts


class TestRetire:
    def test_retired_allocated_frame_leaves_its_owner(self):
        alloc = FrameAllocator(n_chips=2, frames_per_chip=4)
        frame = alloc.allocate("g", 1)[0]
        alloc.retire(frame)
        assert alloc.owner_of(frame) is None
        assert frame in alloc.retired_frames
        assert alloc.frames_of("g") == []

    def test_retired_free_frame_leaves_the_pool(self):
        alloc = FrameAllocator(n_chips=1, frames_per_chip=4)
        before = alloc.free_frames
        alloc.retire(Frame(0, 0))
        assert alloc.free_frames == before - 1

    def test_retire_is_idempotent(self):
        alloc = FrameAllocator(n_chips=1, frames_per_chip=4)
        alloc.retire(Frame(0, 0))
        alloc.retire(Frame(0, 0))
        assert alloc.free_frames == 3
        assert len(alloc.retired_frames) == 1

    def test_retired_frame_is_never_reallocated(self):
        alloc = FrameAllocator(n_chips=1, frames_per_chip=2)
        alloc.retire(Frame(0, 0))
        got = alloc.allocate("g", 1)
        assert got == [Frame(0, 1)]
        with pytest.raises(OutOfFramesError):
            alloc.allocate("g", 1)


class TestMigrate:
    def test_migration_prefers_the_same_chip(self):
        alloc = FrameAllocator(n_chips=2, frames_per_chip=4)
        frame = alloc.allocate("g", 1)[0]
        replacement = alloc.migrate(frame)
        assert replacement.chip == frame.chip
        assert replacement != frame
        assert alloc.owner_of(replacement) == "g"
        assert frame in alloc.retired_frames

    def test_migration_crosses_chips_when_home_is_full(self):
        alloc = FrameAllocator(n_chips=2, frames_per_chip=1)
        frame = alloc.allocate("g", 1)[0]
        replacement = alloc.migrate(frame)
        assert replacement.chip != frame.chip

    def test_migration_with_no_frames_left_raises(self):
        alloc = FrameAllocator(n_chips=1, frames_per_chip=1)
        frame = alloc.allocate("g", 1)[0]
        with pytest.raises(OutOfFramesError):
            alloc.migrate(frame)

    def test_migration_preserves_group_ownership(self):
        alloc = FrameAllocator(n_chips=1, frames_per_chip=4)
        frames = alloc.allocate("g", 2)
        alloc.migrate(frames[0], "g")
        assert len(alloc.frames_of("g")) == 2


class TestPagerMigrate:
    def test_migration_cost_for_configured_page_includes_reconfig(self):
        costs = SwapCosts(page_bytes=1024, transfer_ns_per_byte=1.0, reconfig_ns=500.0)
        pager = Pager(n_frames=4, costs=costs)
        pager.bind(7)
        pager.touch(7)
        assert pager.migrate(7) == 1024.0 + 500.0
        assert pager.migrations == 1
        assert pager.migration_ns == 1524.0

    def test_passive_page_migrates_without_reconfig(self):
        costs = SwapCosts(page_bytes=1024, transfer_ns_per_byte=1.0, reconfig_ns=500.0)
        pager = Pager(n_frames=4, costs=costs)
        pager.touch(7)
        assert pager.migrate(7) == 1024.0

    def test_migration_pays_no_disk_latency(self):
        costs = SwapCosts(disk_latency_ns=5e6, page_bytes=1024, transfer_ns_per_byte=1.0)
        pager = Pager(n_frames=4, costs=costs)
        pager.touch(7)
        assert pager.migrate(7) < costs.conventional_fault_ns()

    def test_migration_preserves_residency_as_mru(self):
        pager = Pager(n_frames=2)
        pager.touch(1)
        pager.touch(2)  # LRU order now [2, 1]
        pager.migrate(1)  # 1 becomes MRU, still resident
        assert pager.resident == {1, 2}
        pager.touch(3)  # evicts the LRU page: 2, not the migrated 1
        assert 1 in pager.resident
        assert 2 not in pager.resident

    def test_migration_is_not_a_fault(self):
        pager = Pager(n_frames=4)
        pager.touch(7)
        faults_before = pager.faults
        pager.migrate(7)
        assert pager.faults == faults_before


class TestSeedDeterminism:
    """Same fault seed => bit-identical stats, any execution layout."""

    def fault_cfg(self, seed=42):
        from repro.faults.models import FaultConfig

        return FaultConfig(
            seed=seed, bit_flip_rate=0.4, hard_fault_rate=0.3, le_defect_density=100.0
        )

    def test_repeated_runs_are_bit_identical(self):
        from repro.apps.registry import get_app
        from repro.experiments.runner import run_radram
        from repro.radram.config import RADramConfig

        cfg = RADramConfig.reference().with_faults(self.fault_cfg())
        runs = [run_radram(get_app("array-insert"), 8, radram_config=cfg) for _ in range(2)]
        assert runs[0].stats.as_dict() == runs[1].stats.as_dict()
        assert runs[0].fault_counters == runs[1].fault_counters

    def test_different_seeds_change_the_fault_history(self):
        from repro.apps.registry import get_app
        from repro.experiments.runner import run_radram
        from repro.radram.config import RADramConfig

        a = run_radram(
            get_app("array-insert"),
            8,
            radram_config=RADramConfig.reference().with_faults(self.fault_cfg(seed=1)),
        )
        b = run_radram(
            get_app("array-insert"),
            8,
            radram_config=RADramConfig.reference().with_faults(self.fault_cfg(seed=2)),
        )
        assert a.fault_counters != b.fault_counters

    def test_pooled_and_serial_sweeps_are_bit_identical(self, tmp_path):
        from repro.experiments.harness import HarnessSettings, faults_task, run_sweep
        from repro.radram.config import RADramConfig

        tasks = [
            faults_task(
                app,
                4.0,
                radram_config=RADramConfig.reference().with_faults(self.fault_cfg()),
                page_bytes=64 * 1024,
            )
            for app in ("array-insert", "database")
        ]
        serial = run_sweep(
            tasks, settings=HarnessSettings(jobs=1, use_cache=False)
        )
        pooled = run_sweep(
            tasks, settings=HarnessSettings(jobs=2, use_cache=False)
        )
        for s, p in zip(serial, pooled):
            assert s.values == p.values  # bit-for-bit, fault counters included
            assert any(k.startswith("faults.") for k in s.values)
