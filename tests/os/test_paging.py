"""Tests for Active-Page demand paging and replacement."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.os.paging import Pager, PagingPolicy, SwapCosts


class TestSwapCosts:
    def test_active_fault_costs_more(self):
        costs = SwapCosts()
        assert costs.active_fault_ns() > costs.conventional_fault_ns()

    def test_fpga_era_reconfiguration_dominates(self):
        # "Current FPGA technologies take 100s of milliseconds" — the
        # reconfiguration dwarfs the disk transfer.
        costs = SwapCosts()
        assert costs.active_multiplier > 2.0

    def test_projected_fast_reconfig_lands_in_papers_2_to_4x(self):
        # Section 6: Active-Page replacement "2-4 times larger than
        # for conventional pages" with next-generation reconfigurable
        # technology (~10 ms class).
        costs = SwapCosts(reconfig_ns=10e6)
        assert 1.5 < costs.active_multiplier < 4.0

    def test_passive_pages_pay_conventional_cost(self):
        pager = Pager(n_frames=2)
        cost = pager.touch(1)
        assert cost == pytest.approx(pager.costs.conventional_fault_ns())

    def test_configured_pages_pay_active_cost(self):
        pager = Pager(n_frames=2)
        pager.bind(1)
        cost = pager.touch(1)
        assert cost == pytest.approx(pager.costs.active_fault_ns())


class TestReplacement:
    def test_hits_cost_nothing(self):
        pager = Pager(n_frames=2)
        pager.touch(1)
        assert pager.touch(1) == 0.0
        assert pager.faults == 1

    def test_lru_evicts_least_recent(self):
        pager = Pager(n_frames=2, policy=PagingPolicy.LRU)
        pager.touch(1)
        pager.touch(2)
        pager.touch(1)  # 2 is now LRU
        pager.touch(3)  # evicts 2
        assert pager.resident == {1, 3}

    def test_active_aware_prefers_passive_victims(self):
        pager = Pager(n_frames=2, policy=PagingPolicy.ACTIVE_AWARE)
        pager.bind(1)
        pager.touch(1)
        pager.touch(2)  # passive, and more recent than 1
        pager.touch(3)  # plain LRU would evict 1 (configured!)
        assert 1 in pager.resident
        assert 2 not in pager.resident

    def test_computing_pages_never_evicted(self):
        pager = Pager(n_frames=2, policy=PagingPolicy.LRU)
        pager.touch(1)
        pager.begin_computation(1)
        pager.touch(2)
        pager.touch(3)  # must evict 2, not the computing 1
        assert 1 in pager.resident
        pager.end_computation(1)

    def test_all_computing_is_an_error(self):
        pager = Pager(n_frames=1)
        pager.touch(1)
        pager.begin_computation(1)
        with pytest.raises(RuntimeError):
            pager.touch(2)

    def test_active_aware_cuts_fault_cost_on_mixed_working_set(self):
        # A configured hot page plus a stream of passive pages: the
        # aware policy keeps the expensive page resident.
        def run(policy):
            pager = Pager(n_frames=4, policy=policy)
            pager.bind(0)
            total = 0.0
            for i in range(1, 300):
                if i % 5 == 0:
                    # The configured page returns periodically; plain
                    # LRU will have evicted it by then.
                    total += pager.touch(0)
                total += pager.touch(i % 7 + 1)  # passive stream
            return total

        assert run(PagingPolicy.ACTIVE_AWARE) < run(PagingPolicy.LRU)

    @given(
        refs=st.lists(st.integers(min_value=0, max_value=9), min_size=1, max_size=300),
        frames=st.integers(min_value=1, max_value=8),
    )
    @settings(max_examples=50, deadline=None)
    def test_residency_never_exceeds_frames(self, refs, frames):
        pager = Pager(n_frames=frames)
        for r in refs:
            pager.touch(r)
        assert len(pager.resident) <= frames

    @given(
        refs=st.lists(st.integers(min_value=0, max_value=9), min_size=1, max_size=200),
    )
    @settings(max_examples=30, deadline=None)
    def test_more_frames_never_increase_lru_faults(self, refs):
        # LRU is a stack algorithm: no Belady anomaly.
        def faults(n):
            pager = Pager(n_frames=n, policy=PagingPolicy.LRU)
            for r in refs:
                pager.touch(r)
            return pager.faults

        assert faults(6) <= faults(3)
