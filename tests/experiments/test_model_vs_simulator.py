"""Property test: the simulator obeys the Figure 7 analytic model.

For synthetic applications with constant per-page activation and
computation times and *no processor work between waits*, the
simulator's total stall time must equal the analytic NO(i) recursion
exactly, and total kernel time must equal Σ(T_A + T_P + NO).  This is
the strongest consistency check in the repository: two independent
implementations of the paper's timing semantics agreeing bit-for-bit.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.functions import PageTask
from repro.core.model import non_overlap_times
from repro.radram.config import RADramConfig
from repro.radram.dispatch import activation_ns
from repro.radram.system import RADramMemorySystem
from repro.sim import ops as O
from repro.sim.machine import Machine
from repro.sim.memory import PagedMemory


def run_synthetic(n_pages: int, words: int, cycles: float, post_ops: float):
    cfg = RADramConfig.reference().with_page_bytes(4096)
    memsys = RADramMemorySystem(cfg)
    machine = Machine(memory=PagedMemory(page_bytes=4096), memsys=memsys)
    ops = []
    for p in range(n_pages):
        ops.append(O.Activate(p, words, PageTask.simple(cycles)))
    for p in range(n_pages):
        ops.append(O.WaitPage(p))
        ops.append(O.Compute(post_ops))
    stats = machine.run(iter(ops))
    t_a = activation_ns(words, cfg, machine.config.dram, machine.config.bus)
    t_c = cycles * cfg.logic_cycle_ns
    return stats, t_a, t_c


class TestModelSimulatorAgreement:
    @given(
        n_pages=st.integers(min_value=1, max_value=64),
        words=st.integers(min_value=0, max_value=64),
        cycles=st.floats(min_value=0.0, max_value=1e5),
        post_ops=st.floats(min_value=0.0, max_value=5e3),
    )
    @settings(max_examples=60, deadline=None)
    def test_stall_equals_no_recursion(self, n_pages, words, cycles, post_ops):
        stats, t_a, t_c = run_synthetic(n_pages, words, cycles, post_ops)
        expected = float(
            np.sum(non_overlap_times(t_a, post_ops, t_c, n_pages))
        )
        assert stats.wait_ns == pytest.approx(expected, abs=1e-6)

    @given(
        n_pages=st.integers(min_value=1, max_value=64),
        words=st.integers(min_value=0, max_value=64),
        cycles=st.floats(min_value=0.0, max_value=1e5),
        post_ops=st.floats(min_value=0.0, max_value=5e3),
    )
    @settings(max_examples=60, deadline=None)
    def test_total_time_equals_model_sum(self, n_pages, words, cycles, post_ops):
        stats, t_a, t_c = run_synthetic(n_pages, words, cycles, post_ops)
        no = float(np.sum(non_overlap_times(t_a, post_ops, t_c, n_pages)))
        expected_total = n_pages * (t_a + post_ops) + no
        assert stats.total_ns == pytest.approx(expected_total, abs=1e-6)

    def test_pages_for_overlap_matches_simulated_zero_stall(self):
        # At the model's overlap point the simulator's stall is 0; one
        # page fewer and it is positive.
        from repro.core.model import pages_for_complete_overlap

        words, cycles, post_ops = 8, 20_000, 1_000.0
        cfg = RADramConfig.reference()
        t_a = activation_ns(words, cfg, Machine().config.dram, Machine().config.bus)
        t_c = cycles * cfg.logic_cycle_ns
        k = pages_for_complete_overlap(t_a, post_ops, t_c)
        stats_at, _, _ = run_synthetic(k, words, cycles, post_ops)
        assert stats_at.wait_ns == 0.0
        if k > 1:
            stats_below, _, _ = run_synthetic(k - 1, words, cycles, post_ops)
            assert stats_below.wait_ns > 0.0
