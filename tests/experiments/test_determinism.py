"""Determinism guarantees of the sweep harness.

The same ``SweepTask`` must produce bit-identical values no matter how
it is executed: directly in-process, through a multiprocessing worker
pool, or via an on-disk cache round-trip.  This guards the harness
against seed drift (workers seeing different RNG state) and float
drift (values changing through JSON serialization).
"""

import pytest

from repro.experiments.harness import (
    HarnessSettings,
    constants_task,
    execute_task,
    run_sweep,
    speedup_task,
)

PAGE = 64 * 1024

TASKS = [
    speedup_task("database", 2.0, page_bytes=PAGE),
    speedup_task("array-insert", 2.0, page_bytes=PAGE),
    constants_task("database", 2.0, page_bytes=PAGE),
    # A parametric (generated) workload: determinism must also hold
    # when workload params ride along in the task.
    speedup_task(
        "database",
        2.0,
        page_bytes=PAGE,
        params={"selectivity": 0.4},
        generator="database/v1",
    ),
]


@pytest.fixture(scope="module")
def in_process_values():
    return [execute_task(task) for task in TASKS]


class TestExecutionPathsAgree:
    def test_pool_matches_in_process(self, in_process_values):
        outcome = run_sweep(
            TASKS, settings=HarnessSettings(jobs=4, use_cache=False)
        )
        for result, direct in zip(outcome, in_process_values):
            assert result.values == direct  # bit-identical floats

    def test_cache_roundtrip_matches_in_process(self, tmp_path, in_process_values):
        settings = HarnessSettings(cache_dir=str(tmp_path / "cache"))
        run_sweep(TASKS, settings=settings)  # populate
        warm = run_sweep(TASKS, settings=settings)  # read back from disk
        assert all(r.cached for r in warm)
        for result, direct in zip(warm, in_process_values):
            assert result.values == direct

    def test_serial_sweep_matches_in_process(self, in_process_values):
        outcome = run_sweep(
            TASKS, settings=HarnessSettings(jobs=1, use_cache=False)
        )
        for result, direct in zip(outcome, in_process_values):
            assert result.values == direct

    def test_repeated_execution_is_stable(self):
        task = TASKS[0]
        assert execute_task(task) == execute_task(task)

    def test_total_ns_bit_identical_across_paths(self, tmp_path):
        """The headline numbers (total times) specifically: serial,
        pooled, and cached execution may not differ by even one ULP."""
        task = TASKS[0]
        serial = run_sweep([task], settings=HarnessSettings(use_cache=False))
        pooled = run_sweep(
            [task, TASKS[1]], settings=HarnessSettings(jobs=2, use_cache=False)
        )
        settings = HarnessSettings(cache_dir=str(tmp_path / "cache"))
        run_sweep([task], settings=settings)
        cached = run_sweep([task], settings=settings)
        for path in (pooled[0], cached[0]):
            assert path["conventional_ns"] == serial[0]["conventional_ns"]
            assert path["radram_ns"] == serial[0]["radram_ns"]
            assert path["stall_fraction"] == serial[0]["stall_fraction"]
