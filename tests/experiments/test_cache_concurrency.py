"""Concurrent ResultCache.store safety (the O_EXCL tmp-name fix).

Before the fix, every store of a key used the *same* ``.tmp.<pid>``
sibling name, so two threads of one process (exactly the serve server's
worker situation) could truncate each other's half-written payload and
rename garbage into the cache.  These tests pin the new contract:
every concurrent writer claims a distinct ``O_EXCL`` tmp file, the
final entry is always one complete payload, and no tmp litter is left
behind.
"""

from __future__ import annotations

import json
import os
import threading

import pytest

from repro.experiments import harness


def _result(value: float) -> harness.TaskResult:
    task = harness.speedup_task("array-insert", 2.0)
    return harness.TaskResult(
        task=task, values={"speedup": value}, wall_s=0.01
    )


class TestConcurrentStore:
    def test_many_threads_same_key_leave_one_valid_entry(self, tmp_path):
        cache = harness.ResultCache(tmp_path)
        n = 16
        barrier = threading.Barrier(n)
        errors = []

        def store(i: int) -> None:
            try:
                barrier.wait(timeout=30)
                for _ in range(20):
                    cache.store(_result(float(i)))
            except Exception as exc:  # noqa: BLE001 - surfaced below
                errors.append(exc)

        threads = [threading.Thread(target=store, args=(i,)) for i in range(n)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60)
        assert not errors

        entries = cache.entries()
        assert len(entries) == 1
        # Whoever won, the entry is one complete, valid payload.
        payload = json.loads(entries[0].read_text())
        assert payload["values"]["speedup"] in {float(i) for i in range(n)}
        loaded = cache.load(harness.speedup_task("array-insert", 2.0))
        assert loaded is not None and loaded.cached

    def test_concurrent_writers_never_share_a_tmp_name(
        self, tmp_path, monkeypatch
    ):
        cache = harness.ResultCache(tmp_path)
        seen = []
        lock = threading.Lock()
        real_replace = os.replace

        def recording_replace(src, dst):
            with lock:
                seen.append(str(src))
            real_replace(src, dst)

        monkeypatch.setattr(os, "replace", recording_replace)
        n = 8
        barrier = threading.Barrier(n)
        threads = [
            threading.Thread(
                target=lambda i=i: (
                    barrier.wait(timeout=30),
                    cache.store(_result(float(i))),
                )
            )
            for i in range(n)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60)
        assert len(seen) == n
        assert len(set(seen)) == n, f"tmp names collided: {seen}"

    def test_claim_tmp_skips_existing_names(self, tmp_path, monkeypatch):
        import itertools

        cache = harness.ResultCache(tmp_path)
        target = tmp_path / "ab" / "abcdef.json"
        target.parent.mkdir(parents=True)
        # Restart the process-local counter and squat on its first name:
        # a leftover from a killed writer (or a pid-reuse collision) must
        # be skipped, never truncated.
        monkeypatch.setattr(
            harness.ResultCache, "_tmp_counter", itertools.count()
        )
        squatted = target.with_suffix(f".tmp.{os.getpid()}.0")
        squatted.write_text("do not truncate me")
        fd, tmp = cache._claim_tmp(target)
        try:
            assert tmp != squatted
            assert tmp.name.endswith(".1")
            assert squatted.read_text() == "do not truncate me"
        finally:
            os.close(fd)

    def test_no_tmp_litter_after_stores(self, tmp_path):
        cache = harness.ResultCache(tmp_path)
        for i in range(5):
            cache.store(_result(float(i)))
        litter = list(tmp_path.glob("*/*.tmp.*"))
        assert litter == []

    def test_failed_results_are_never_stored(self, tmp_path):
        cache = harness.ResultCache(tmp_path)
        bad = _result(1.0)
        bad.error = "it broke"
        cache.store(bad)
        assert cache.entries() == []


class TestStatsAndPrune:
    def test_stats_counts_entries_and_schemas(self, tmp_path):
        cache = harness.ResultCache(tmp_path)
        stats = cache.stats()
        assert stats["entries"] == 0 and stats["total_bytes"] == 0
        assert stats["oldest_mtime"] is None

        cache.store(_result(1.0))
        other = harness.TaskResult(
            task=harness.speedup_task("array-find", 2.0),
            values={"speedup": 2.0},
            wall_s=0.01,
        )
        cache.store(other)
        stats = cache.stats()
        assert stats["entries"] == 2
        assert stats["total_bytes"] > 0
        assert stats["by_schema"] == {str(harness.CACHE_SCHEMA): 2}
        assert stats["oldest_mtime"] <= stats["newest_mtime"]

    def test_stats_buckets_corrupt_entries(self, tmp_path):
        cache = harness.ResultCache(tmp_path)
        cache.store(_result(1.0))
        entry = cache.entries()[0]
        bad = entry.parent / "deadbeef.json"
        bad.write_text("{ not json")
        stats = cache.stats()
        assert stats["entries"] == 2
        assert stats["by_schema"]["corrupt"] == 1

    def test_prune_by_age(self, tmp_path):
        cache = harness.ResultCache(tmp_path)
        cache.store(_result(1.0))
        entry = cache.entries()[0]
        # Nothing is old enough yet.
        assert cache.prune(days=1.0) == 0
        assert cache.entries()
        # Age the entry two days into the past; prune catches it.
        old = os.path.getmtime(entry) - 2 * 86400
        os.utime(entry, (old, old))
        assert cache.prune(days=1.0) == 1
        assert cache.entries() == []

    def test_prune_sweeps_stale_tmp_litter(self, tmp_path):
        cache = harness.ResultCache(tmp_path)
        cache.store(_result(1.0))
        litter = cache.entries()[0].parent / "feedface.tmp.12345.0"
        litter.write_text("half a payload")
        old = os.path.getmtime(litter) - 2 * 86400
        os.utime(litter, (old, old))
        removed = cache.prune(days=1.0)
        assert removed == 0  # litter never counts as an entry
        assert not litter.exists()
        assert len(cache.entries()) == 1  # the fresh entry survives

    def test_prune_rejects_negative_days(self, tmp_path):
        cache = harness.ResultCache(tmp_path)
        with pytest.raises(ValueError):
            cache.prune(days=-1.0)

    def test_prune_zero_days_clears_everything(self, tmp_path):
        cache = harness.ResultCache(tmp_path)
        cache.store(_result(1.0))
        entry = cache.entries()[0]
        old = os.path.getmtime(entry) - 10
        os.utime(entry, (old, old))
        assert cache.prune(days=0.0) == 1
        assert cache.entries() == []
