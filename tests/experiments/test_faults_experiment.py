"""Tests for the defect-density experiment (``python -m repro faults``)."""

import pytest

from repro.experiments import faults_density, harness
from repro.experiments.harness import HarnessSettings, faults_task, run_sweep
from repro.faults.models import FaultConfig, expected_page_survival
from repro.radram.config import RADramConfig

PAGE = 64 * 1024


class TestFaultsTask:
    def test_requires_a_fault_config(self):
        with pytest.raises(ValueError, match="faults"):
            faults_task("database", 2.0, radram_config=RADramConfig.reference())

    def test_values_carry_fault_counters(self, tmp_path):
        rc = RADramConfig.reference().with_faults(FaultConfig(bit_flip_rate=1.0))
        task = faults_task("database", 2.0, radram_config=rc, page_bytes=PAGE)
        outcome = run_sweep(
            [task], settings=HarnessSettings(cache_dir=str(tmp_path / "c"))
        )
        values = outcome[0].values
        assert values["speedup"] > 0
        assert values["faults.bit_flips"] > 0
        assert values["faults.pages_touched"] >= 1

    def test_cache_roundtrip_preserves_fault_counters(self, tmp_path):
        rc = RADramConfig.reference().with_faults(FaultConfig(bit_flip_rate=1.0))
        task = faults_task("database", 2.0, radram_config=rc, page_bytes=PAGE)
        settings = HarnessSettings(cache_dir=str(tmp_path / "c"))
        cold = run_sweep([task], settings=settings)
        warm = run_sweep([task], settings=settings)
        assert warm.stats.hits == 1
        assert warm[0].values == cold[0].values

    def test_key_depends_on_the_fault_config(self):
        rc_a = RADramConfig.reference().with_faults(FaultConfig(seed=1))
        rc_b = RADramConfig.reference().with_faults(FaultConfig(seed=2))
        a = faults_task("database", 2.0, radram_config=rc_a, page_bytes=PAGE)
        b = faults_task("database", 2.0, radram_config=rc_b, page_bytes=PAGE)
        assert a.key() != b.key()


class TestFaultsDensityExperiment:
    @pytest.fixture(scope="class")
    def result(self, tmp_path_factory):
        import os

        cache = tmp_path_factory.mktemp("faults-density-cache")
        previous = os.environ.get(harness.CACHE_DIR_ENV)
        os.environ[harness.CACHE_DIR_ENV] = str(cache)
        try:
            yield faults_density.run(
                apps=["array-insert"],
                densities=[0.0, 800.0],
                page_bytes=PAGE,
            )
        finally:
            if previous is None:
                os.environ.pop(harness.CACHE_DIR_ENV, None)
            else:
                os.environ[harness.CACHE_DIR_ENV] = previous

    def test_one_row_per_grid_point(self, result):
        assert len(result.rows) == 2
        assert [r["density_cm2"] for r in result.rows] == [0.0, 800.0]

    def test_zero_density_degrades_nothing(self, result):
        clean = result.rows[0]
        assert clean["degraded_pages"] == 0
        assert clean["surviving_frac"] == 1.0
        assert clean["expected_frac"] == 1.0

    def test_speedup_degrades_gracefully_with_density(self, result):
        clean, dense = result.rows
        assert dense["degraded_pages"] > 0
        assert 0.0 < dense["speedup"] < clean["speedup"]
        assert 0.0 <= dense["surviving_frac"] < 1.0

    def test_expected_frac_matches_the_analytic_model(self, result):
        for row in result.rows:
            assert row["expected_frac"] == pytest.approx(
                expected_page_survival(row["density_cm2"])
            )

    def test_render_produces_a_table(self, result):
        text = result.render()
        assert "faults-density" in text
        assert "surviving_frac" in text
