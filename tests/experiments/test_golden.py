"""Golden regression fixtures for the reproduced numbers.

Small-size renderings of Figure 3 and Table 4 are checked into
``tests/data/`` and compared byte-for-byte.  Any refactor of the
runner, the sweep harness, or the simulator that silently shifts a
reproduced number fails here first.

Volatile ``harness:`` notes (cache-hit counters, wall time) are
stripped before comparison; everything else — values, formatting,
column layout — must match exactly.  To regenerate after an
*intentional* change, run this module with ``REGENERATE_GOLDEN=1``.
"""

import os
import pathlib

import pytest

from repro.experiments import fig3_speedup, table4_model
from repro.experiments.results import ExperimentResult

DATA_DIR = pathlib.Path(__file__).resolve().parent.parent / "data"

GOLDEN = {
    "fig3_golden.txt": lambda: fig3_speedup.run(
        apps=["array-insert", "database"], sweep=[1, 4]
    ),
    "table4_golden.txt": lambda: table4_model.run(
        apps=["array-insert", "database"], sweep=[1, 4]
    ),
}


def stable_render(result: ExperimentResult) -> str:
    """``render()`` without the volatile sweep-accounting notes."""
    lines = [
        line
        for line in result.render().splitlines()
        if not line.startswith("note: harness:")
    ]
    return "\n".join(lines) + "\n"


@pytest.mark.parametrize("fixture_name", sorted(GOLDEN))
def test_rendering_matches_golden(fixture_name):
    rendered = stable_render(GOLDEN[fixture_name]())
    path = DATA_DIR / fixture_name
    if os.environ.get("REGENERATE_GOLDEN") == "1":  # pragma: no cover
        path.write_text(rendered)
    expected = path.read_text()
    assert rendered == expected, (
        f"{fixture_name} drifted from the checked-in golden rendering; "
        "if the change is intentional, regenerate with REGENERATE_GOLDEN=1"
    )


def test_golden_fixtures_have_no_volatile_notes():
    for name in GOLDEN:
        content = (DATA_DIR / name).read_text()
        assert "harness:" not in content
