"""Tests for the parallel sweep harness and its result cache."""

import json

import pytest

from repro.experiments import fig3_speedup, harness
from repro.experiments.harness import (
    HarnessSettings,
    ResultCache,
    SweepTask,
    constants_task,
    execute_task,
    run_sweep,
    speedup_task,
)

PAGE = 64 * 1024  # small pages keep the simulations fast


def fast_task(app="database", pages=2.0, **kw):
    return speedup_task(app, pages, page_bytes=PAGE, **kw)


def settings_for(tmp_path, **kw):
    kw.setdefault("cache_dir", str(tmp_path / "cache"))
    return HarnessSettings(**kw)


class TestSweepTask:
    def test_equal_tasks_have_equal_keys(self):
        assert fast_task().key() == fast_task().key()

    def test_key_depends_on_every_field(self):
        base = fast_task()
        assert base.key() != fast_task(pages=4.0).key()
        assert base.key() != fast_task(app="array-insert").key()
        assert base.key() != speedup_task("database", 2.0, page_bytes=PAGE, seed=1).key()
        assert base.key() != constants_task("database", 2.0, page_bytes=PAGE).key()

    def test_key_depends_on_configs(self):
        from repro.sim.config import MachineConfig

        cfg = MachineConfig.reference().with_miss_latency(100.0)
        assert fast_task().key() != fast_task(machine_config=cfg).key()

    def test_tasks_are_hashable_and_usable_as_dict_keys(self):
        seen = {fast_task(): 1}
        assert seen[fast_task()] == 1

    def test_rejects_unknown_mode(self):
        with pytest.raises(ValueError):
            SweepTask(app_name="database", n_pages=2.0, mode="nonsense")

    def test_rejects_nonpositive_size(self):
        with pytest.raises(ValueError):
            SweepTask(app_name="database", n_pages=0.0)


class TestRunSweep:
    def test_results_preserve_input_order(self, tmp_path):
        tasks = [fast_task(pages=p) for p in (4.0, 1.0, 2.0)]
        outcome = run_sweep(tasks, settings=settings_for(tmp_path))
        assert [r.task.n_pages for r in outcome] == [4.0, 1.0, 2.0]

    def test_duplicate_tasks_simulated_once(self, tmp_path):
        outcome = run_sweep(
            [fast_task(), fast_task(), fast_task()],
            settings=settings_for(tmp_path),
        )
        assert outcome.stats.tasks == 3
        assert outcome.stats.misses == 1
        assert outcome[0].values == outcome[2].values

    def test_values_match_direct_execution(self, tmp_path):
        task = fast_task()
        outcome = run_sweep([task], settings=settings_for(tmp_path))
        assert outcome[0].values == execute_task(task)

    def test_warm_cache_performs_zero_simulations(self, tmp_path):
        settings = settings_for(tmp_path)
        tasks = [fast_task(pages=p) for p in (1.0, 2.0)]
        cold = run_sweep(tasks, settings=settings)
        assert cold.stats.misses == 2 and cold.stats.hits == 0
        warm = run_sweep(tasks, settings=settings)
        assert warm.stats.misses == 0
        assert warm.stats.hits == len(tasks)
        assert all(r.cached for r in warm)
        for a, b in zip(cold, warm):
            assert a.values == b.values  # bit-identical via JSON round-trip

    def test_no_cache_never_touches_disk(self, tmp_path):
        settings = settings_for(tmp_path, use_cache=False)
        run_sweep([fast_task()], settings=settings)
        assert not (tmp_path / "cache").exists()

    def test_constants_mode_values(self, tmp_path):
        task = constants_task("database", 2.0, page_bytes=PAGE)
        outcome = run_sweep([task], settings=settings_for(tmp_path))
        values = outcome[0].values
        for key in ("t_a_us", "t_p_us", "t_c_us", "t_conv_per_activation_us"):
            assert values[key] >= 0.0

    def test_notes_report_counters(self, tmp_path):
        outcome = run_sweep([fast_task()], settings=settings_for(tmp_path))
        notes = outcome.notes()
        assert any(n.startswith("harness:") and "1 simulated" in n for n in notes)


class TestResultCache:
    def test_corrupt_entry_is_discarded_and_recomputed(self, tmp_path):
        settings = settings_for(tmp_path)
        task = fast_task()
        first = run_sweep([task], settings=settings)
        path = ResultCache(settings.resolve_cache_dir()).path_for(task.key())
        path.write_text("{ not json")
        again = run_sweep([task], settings=settings)
        assert again.stats.misses == 1  # recomputed, not crashed
        assert again[0].values == first[0].values

    def test_entry_with_missing_fields_is_discarded(self, tmp_path):
        settings = settings_for(tmp_path)
        task = fast_task()
        run_sweep([task], settings=settings)
        path = ResultCache(settings.resolve_cache_dir()).path_for(task.key())
        path.write_text(json.dumps({"values": {}}))
        again = run_sweep([task], settings=settings)
        assert again.stats.misses == 1

    def test_stored_entry_roundtrips_exact_floats(self, tmp_path):
        settings = settings_for(tmp_path)
        task = fast_task()
        cold = run_sweep([task], settings=settings)
        warm = run_sweep([task], settings=settings)
        for key, value in cold[0].values.items():
            assert warm[0].values[key] == value

    def test_entries_and_clear(self, tmp_path):
        settings = settings_for(tmp_path)
        run_sweep([fast_task(pages=p) for p in (1.0, 2.0)], settings=settings)
        cache = ResultCache(settings.resolve_cache_dir())
        assert len(cache.entries()) == 2
        assert cache.clear() == 2
        assert cache.entries() == []

    def test_version_participates_in_key(self, tmp_path, monkeypatch):
        key_before = fast_task().key()
        monkeypatch.setattr(harness, "__version__", "999.0.0")
        assert fast_task().key() != key_before


class TestSettings:
    def test_configure_and_reset(self):
        harness.configure(jobs=3, use_cache=False)
        assert harness.current_settings().jobs == 3
        assert harness.current_settings().use_cache is False
        harness.reset_settings()
        assert harness.current_settings().jobs == 1
        assert harness.current_settings().use_cache is True

    def test_configure_rejects_bad_jobs(self):
        with pytest.raises(ValueError):
            harness.configure(jobs=0)

    def test_env_var_selects_cache_dir(self, monkeypatch):
        monkeypatch.setenv(harness.CACHE_DIR_ENV, "/tmp/somewhere-else")
        assert str(HarnessSettings().resolve_cache_dir()) == "/tmp/somewhere-else"


class TestExperimentIntegration:
    def test_second_fig3_run_is_all_cache_hits(self, tmp_path, monkeypatch):
        """Acceptance: a warm second invocation of fig3 simulates nothing."""
        monkeypatch.setenv(harness.CACHE_DIR_ENV, str(tmp_path / "cache"))
        apps = ["database"]
        sweep = [0.5, 2]
        cold = fig3_speedup.run(apps=apps, sweep=sweep)
        assert harness.last_sweep_stats.misses == len(sweep)
        warm = fig3_speedup.run(apps=apps, sweep=sweep)
        assert harness.last_sweep_stats.misses == 0
        assert harness.last_sweep_stats.hits == len(sweep)
        cold_rows = [
            {k: v for k, v in row.items()} for row in cold.rows
        ]
        assert warm.rows == cold_rows

    def test_sweep_app_returns_speedup_points(self, tmp_path, monkeypatch):
        monkeypatch.setenv(harness.CACHE_DIR_ENV, str(tmp_path / "cache"))
        points = fig3_speedup.sweep_app("database", sweep=[0.5, 2], page_bytes=PAGE)
        assert [p.n_pages for p in points] == [0.5, 2]
        assert all(p.speedup > 0 for p in points)


class TestTraceSummary:
    """Sweeps run with ``trace_summary`` carry trace.* digests."""

    def test_execute_task_attaches_trace_keys(self):
        task = fast_task()
        values = execute_task(task, trace_summary=True)
        assert values["trace.events"] > 0
        assert values["trace.spans"] > 0
        assert "trace.span_ns.page" in values

    def test_trace_summary_does_not_perturb_measurements(self):
        task = fast_task()
        plain = execute_task(task)
        traced = execute_task(task, trace_summary=True)
        assert {
            k: v for k, v in traced.items() if not k.startswith("trace.")
        } == plain

    def test_tracer_restored_after_execution(self):
        from repro.trace import events as trace_events

        execute_task(fast_task(), trace_summary=True)
        assert trace_events.TRACER is None

    def test_sweep_caches_and_rehits_trace_digests(self, tmp_path):
        settings = settings_for(tmp_path, trace_summary=True)
        task = fast_task()
        cold = run_sweep([task], settings=settings)
        assert cold.stats.misses == 1
        assert any(k.startswith("trace.") for k in cold[0].values)
        warm = run_sweep([task], settings=settings)
        assert warm.stats.hits == 1 and warm.stats.misses == 0
        assert warm[0].values == cold[0].values

    def test_plain_cached_entry_recomputed_when_summary_requested(
        self, tmp_path
    ):
        task = fast_task()
        plain = run_sweep([task], settings=settings_for(tmp_path))
        assert not any(k.startswith("trace.") for k in plain[0].values)
        traced = run_sweep(
            [task], settings=settings_for(tmp_path, trace_summary=True)
        )
        # The stale entry (no trace.* keys) must count as a miss ...
        assert traced.stats.misses == 1 and traced.stats.hits == 0
        assert any(k.startswith("trace.") for k in traced[0].values)
        # ... and the refreshed entry satisfies later traced sweeps.
        again = run_sweep(
            [task], settings=settings_for(tmp_path, trace_summary=True)
        )
        assert again.stats.hits == 1

    def test_traced_entry_still_hits_plain_sweeps(self, tmp_path):
        task = fast_task()
        run_sweep([task], settings=settings_for(tmp_path, trace_summary=True))
        plain = run_sweep([task], settings=settings_for(tmp_path))
        assert plain.stats.hits == 1

    def test_pooled_workers_receive_trace_summary_flag(self, tmp_path):
        settings = settings_for(tmp_path, jobs=2, trace_summary=True)
        tasks = [fast_task(pages=p) for p in (1.0, 2.0)]
        outcome = run_sweep(tasks, settings=settings)
        assert all(
            any(k.startswith("trace.") for k in r.values) for r in outcome
        )
