"""Tests for the shared experiment runner."""

import pytest

from repro.apps.registry import get_app
from repro.experiments.runner import (
    measure_speedup,
    run_conventional,
    run_radram,
)

PAGE = 512 * 1024


class TestExtrapolation:
    @pytest.mark.parametrize("name", ["array-find", "database", "mpeg-mmx"])
    def test_extrapolation_matches_direct(self, name):
        """The measure-small/extrapolate-large strategy is valid: the
        extrapolated time matches a direct simulation within 3%.

        (2% before the writeback-install fix; posted victims now land
        in L2, which sharpens the size-dependence slightly for
        mpeg-mmx's write-heavy streams.)
        """
        app = get_app(name)
        direct = run_conventional(app, 16, page_bytes=PAGE, cap_pages=None)
        extrapolated = run_conventional(app, 16, page_bytes=PAGE, cap_pages=8.0)
        assert extrapolated.scaled_from_pages == 8.0
        assert extrapolated.total_ns == pytest.approx(direct.total_ns, rel=0.03)

    def test_no_extrapolation_below_cap(self):
        app = get_app("database")
        r = run_conventional(app, 4, page_bytes=PAGE, cap_pages=8.0)
        assert r.scaled_from_pages is None

    def test_functional_runs_never_extrapolate(self):
        app = get_app("database")
        r = run_conventional(app, 16, page_bytes=16 * 1024, functional=True, cap_pages=8.0)
        assert r.scaled_from_pages is None


class TestRunResults:
    def test_radram_reports_mean_page_busy(self):
        r = run_radram(get_app("database"), 4, page_bytes=PAGE)
        # T_C for database is ~60 us per page.
        assert 40e3 < r.mean_page_busy_ns < 90e3

    def test_speedup_point_consistency(self):
        p = measure_speedup(get_app("database"), 4, page_bytes=PAGE)
        assert p.speedup == pytest.approx(p.conventional_ns / p.radram_ns)
        assert 0.0 <= p.stall_fraction <= 1.0

    def test_runs_are_reproducible(self):
        a = measure_speedup(get_app("matrix-simplex"), 4, page_bytes=PAGE)
        b = measure_speedup(get_app("matrix-simplex"), 4, page_bytes=PAGE)
        assert a.speedup == b.speedup

    def test_radram_config_page_size_follows_workload(self):
        # page_bytes different from the RADram default must not break.
        r = run_radram(get_app("database"), 2, page_bytes=64 * 1024)
        assert r.total_ns > 0
