"""Harness resilience: crashed, hung and raising sweep tasks.

These tests exercise the retry/timeout machinery in
:func:`repro.experiments.harness.run_sweep` against *real* failures —
worker processes killed with ``os._exit``, workers stuck in a sleep,
tasks that raise — injected through :mod:`repro.faults.chaos`, plus the
crash safety of the on-disk result cache (a writer killed mid-store
must never leave a readable half-entry).
"""

import json
import os
import signal
import subprocess
import sys
import textwrap

import pytest

from repro.faults import chaos
from repro.experiments.harness import (
    HarnessSettings,
    ResultCache,
    TaskResult,
    faults_task,
    run_sweep,
    speedup_task,
)

PAGE = 64 * 1024


def fast_task(app="database", pages=2.0, **kw):
    return speedup_task(app, pages, page_bytes=PAGE, **kw)


def settings_for(tmp_path, **kw):
    kw.setdefault("cache_dir", str(tmp_path / "cache"))
    kw.setdefault("retry_backoff_s", 0.01)  # keep retries fast in tests
    return HarnessSettings(**kw)


@pytest.fixture
def chaos_spec(tmp_path, monkeypatch):
    """Arm chaos rules for this test; returns the writer function."""

    def arm(rules):
        spec_path = str(tmp_path / "chaos.json")
        chaos.write_spec(spec_path, str(tmp_path / "chaos-state"), rules)
        monkeypatch.setenv(chaos.CHAOS_ENV, spec_path)

    yield arm
    monkeypatch.delenv(chaos.CHAOS_ENV, raising=False)


class TestRaisingTasks:
    def test_serial_raise_is_retried_and_recovers(self, tmp_path, chaos_spec):
        chaos_spec([{"match": "database", "mode": "raise", "times": 1}])
        outcome = run_sweep([fast_task()], settings=settings_for(tmp_path))
        assert outcome.complete
        assert outcome[0].ok
        assert outcome[0].attempts == 2
        assert outcome.stats.retried == 1

    def test_serial_exhausted_retries_record_the_failure(self, tmp_path, chaos_spec):
        chaos_spec([{"match": "database", "mode": "raise", "times": 99}])
        outcome = run_sweep(
            [fast_task()], settings=settings_for(tmp_path, retries=1)
        )
        assert not outcome.complete
        assert outcome.stats.failed == 1
        (failed,) = outcome.failed_results()
        assert failed.attempts == 2
        assert "ChaosError" in failed.error
        assert failed.values == {}

    def test_one_bad_task_does_not_sink_the_sweep(self, tmp_path, chaos_spec):
        chaos_spec([{"match": "database", "mode": "raise", "times": 99}])
        tasks = [fast_task("array-insert"), fast_task("database"), fast_task("median-kernel")]
        outcome = run_sweep(tasks, settings=settings_for(tmp_path, retries=0))
        assert outcome[0].ok and outcome[2].ok
        assert not outcome[1].ok
        assert outcome.stats.failed == 1

    def test_pooled_raise_is_captured_per_task(self, tmp_path, chaos_spec):
        chaos_spec([{"match": "database", "mode": "raise", "times": 99}])
        tasks = [fast_task("array-insert"), fast_task("database")]
        outcome = run_sweep(
            tasks, settings=settings_for(tmp_path, jobs=2, retries=0)
        )
        assert outcome[0].ok
        assert not outcome[1].ok
        assert "ChaosError" in outcome[1].error

    def test_failed_result_getitem_raises_keyerror(self, tmp_path, chaos_spec):
        chaos_spec([{"match": "database", "mode": "raise", "times": 99}])
        outcome = run_sweep(
            [fast_task()], settings=settings_for(tmp_path, retries=0)
        )
        with pytest.raises(KeyError, match="database"):
            outcome[0]["speedup"]

    def test_notes_itemize_failures(self, tmp_path, chaos_spec):
        chaos_spec([{"match": "database", "mode": "raise", "times": 99}])
        outcome = run_sweep(
            [fast_task()], settings=settings_for(tmp_path, retries=0)
        )
        notes = "\n".join(outcome.notes())
        assert "FAILED" in notes
        assert "database@2" in notes
        assert "ChaosError" in notes


class TestCrashedWorkers:
    def test_killed_worker_is_retried_in_a_fresh_pool(self, tmp_path, chaos_spec):
        chaos_spec([{"match": "database", "mode": "crash", "times": 1}])
        tasks = [fast_task("database"), fast_task("array-insert")]
        outcome = run_sweep(tasks, settings=settings_for(tmp_path, jobs=2))
        assert outcome.complete
        assert all(r.ok for r in outcome)
        assert outcome.stats.retried >= 1

    def test_persistent_crasher_fails_alone(self, tmp_path, chaos_spec):
        chaos_spec([{"match": "database", "mode": "crash", "times": 99}])
        tasks = [fast_task("database"), fast_task("array-insert")]
        outcome = run_sweep(
            tasks, settings=settings_for(tmp_path, jobs=2, retries=1)
        )
        assert not outcome[0].ok
        assert "died" in outcome[0].error
        assert outcome[1].ok  # the innocent bystander still completes

    def test_crash_recovered_values_match_a_clean_run(self, tmp_path, chaos_spec):
        clean = run_sweep(
            [fast_task()], settings=settings_for(tmp_path, use_cache=False)
        )
        chaos_spec([{"match": "database", "mode": "crash", "times": 1}])
        chaotic = run_sweep(
            [fast_task(), fast_task("array-insert")],
            settings=settings_for(tmp_path, jobs=2, use_cache=False),
        )
        assert chaotic[0].values == clean[0].values  # bit-for-bit reproducible


class TestHungWorkers:
    def test_hang_is_preempted_by_the_task_timeout(self, tmp_path, chaos_spec):
        chaos_spec(
            [{"match": "database", "mode": "hang", "times": 1, "hang_s": 300.0}]
        )
        tasks = [fast_task("database"), fast_task("array-insert")]
        outcome = run_sweep(
            tasks, settings=settings_for(tmp_path, jobs=2, task_timeout_s=3.0)
        )
        assert outcome.complete  # retry after the timeout succeeded
        assert outcome.stats.retried >= 1

    def test_persistent_hang_fails_with_timeout_error(self, tmp_path, chaos_spec):
        chaos_spec(
            [{"match": "database", "mode": "hang", "times": 99, "hang_s": 300.0}]
        )
        outcome = run_sweep(
            [fast_task("database"), fast_task("array-insert")],
            settings=settings_for(
                tmp_path, jobs=2, task_timeout_s=1.0, retries=1
            ),
        )
        assert not outcome[0].ok
        assert "timed out after 1s" in outcome[0].error
        assert outcome[1].ok


class TestFailedResultsAndCache:
    def test_failed_results_are_never_cached(self, tmp_path, chaos_spec):
        chaos_spec([{"match": "database", "mode": "raise", "times": 99}])
        settings = settings_for(tmp_path, retries=0)
        run_sweep([fast_task()], settings=settings)
        assert ResultCache(settings.resolve_cache_dir()).entries() == []

    def test_store_refuses_failed_results(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        cache.store(
            TaskResult(task=fast_task(), values={}, wall_s=0.0, error="boom")
        )
        assert cache.entries() == []

    def test_recovered_task_is_cached_normally(self, tmp_path, chaos_spec):
        chaos_spec([{"match": "database", "mode": "raise", "times": 1}])
        settings = settings_for(tmp_path)
        run_sweep([fast_task()], settings=settings)
        assert len(ResultCache(settings.resolve_cache_dir()).entries()) == 1
        warm = run_sweep([fast_task()], settings=settings)
        assert warm.stats.hits == 1


class TestAtomicStore:
    def test_tmp_files_are_invisible_to_entries_and_load(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        task = fast_task()
        key = task.key()
        final = cache.path_for(key)
        final.parent.mkdir(parents=True)
        # A writer died between write and rename: only the tmp remains.
        final.with_suffix(".tmp.12345").write_text('{"values": {"speedup"')
        assert cache.entries() == []
        assert cache.load(task) is None

    def test_writer_killed_mid_store_leaves_no_entry(self, tmp_path):
        """SIGKILL a real writer between fsync and rename."""
        cache_dir = tmp_path / "cache"
        script = textwrap.dedent(
            """
            import os, signal
            from repro.experiments.harness import ResultCache, TaskResult, speedup_task

            # Die at the fsync - after the payload is fully written to the
            # tmp file but before os.replace publishes it.
            os.fsync = lambda fd: os.kill(os.getpid(), signal.SIGKILL)
            cache = ResultCache({cache_dir!r})
            task = speedup_task("database", 2.0, page_bytes=65536)
            cache.store(TaskResult(task=task, values={{"speedup": 1.5}}, wall_s=0.1))
            raise SystemExit("store should have died mid-write")
            """
        ).format(cache_dir=str(cache_dir))
        env = dict(os.environ, PYTHONPATH="src")
        proc = subprocess.run(
            [sys.executable, "-c", script], cwd="/root/repo", env=env
        )
        assert proc.returncode == -signal.SIGKILL
        cache = ResultCache(cache_dir)
        task = speedup_task("database", 2.0, page_bytes=65536)
        assert cache.entries() == []  # no torn entry visible
        assert cache.load(task) is None
        # The same slot still works for a healthy writer afterwards.
        cache.store(TaskResult(task=task, values={"speedup": 1.5}, wall_s=0.1))
        assert cache.load(task).values == {"speedup": 1.5}

    def test_committed_entry_is_complete_json(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        task = fast_task()
        cache.store(TaskResult(task=task, values={"speedup": 2.0}, wall_s=0.1))
        (entry,) = cache.entries()
        payload = json.loads(entry.read_text())  # parses: not torn
        assert payload["values"] == {"speedup": 2.0}
        assert payload["key"] == task.key()


class TestChaosReproducibility:
    """Acceptance: a seeded chaos sweep completes, reports, reproduces."""

    def test_mixed_chaos_sweep_is_bit_for_bit_reproducible(
        self, tmp_path, chaos_spec
    ):
        from repro.faults.models import FaultConfig
        from repro.radram.config import RADramConfig

        rc = RADramConfig.reference().with_faults(
            FaultConfig(seed=7, bit_flip_rate=0.3, hard_fault_rate=0.2)
        )
        tasks = [
            faults_task("array-insert", 4.0, radram_config=rc, page_bytes=PAGE),
            fast_task("database"),
            fast_task("median-kernel"),
        ]
        clean = run_sweep(
            tasks, settings=settings_for(tmp_path / "a", use_cache=False)
        )
        chaos_spec(
            [
                {"match": "array-insert", "mode": "crash", "times": 1},
                {"match": "database", "mode": "hang", "times": 1, "hang_s": 300.0},
                {"match": "median-kernel", "mode": "raise", "times": 1},
            ]
        )
        chaotic = run_sweep(
            tasks,
            settings=settings_for(
                tmp_path / "b", jobs=3, use_cache=False, task_timeout_s=5.0
            ),
        )
        assert chaotic.complete
        assert chaotic.stats.retried >= 3
        for c, k in zip(clean, chaotic):
            assert c.values == k.values  # injected failures never skew results
        notes = "\n".join(chaotic.notes())
        assert "retried" in notes
