"""Table 4 reproduction checks: measured constants vs the paper."""

import pytest

from repro.apps.registry import TABLE4_APPS, get_app
from repro.experiments.table4_model import measure_constants, run


@pytest.fixture(scope="module")
def constants():
    return {name: measure_constants(name) for name in TABLE4_APPS}


class TestConstants:
    @pytest.mark.parametrize("name", TABLE4_APPS)
    def test_t_a_within_8_percent_of_paper(self, constants, name):
        paper = get_app(name).paper_table4
        assert constants[name]["t_a_us"] == pytest.approx(paper.t_a_us, rel=0.08)

    @pytest.mark.parametrize("name", TABLE4_APPS)
    def test_t_p_within_10_percent_of_paper(self, constants, name):
        paper = get_app(name).paper_table4
        assert constants[name]["t_p_us"] == pytest.approx(paper.t_p_us, rel=0.10)

    @pytest.mark.parametrize("name", TABLE4_APPS)
    def test_t_c_within_8_percent_of_paper(self, constants, name):
        paper = get_app(name).paper_table4
        assert constants[name]["t_c_us"] == pytest.approx(paper.t_c_us, rel=0.08)


class TestTable4Run:
    @pytest.fixture(scope="class")
    def result(self):
        return run(
            apps=["array-insert", "database", "matrix-simplex", "matrix-boeing"],
            sweep=[1, 2, 4, 8, 16, 32],
        )

    def _row(self, result, name):
        return next(r for r in result.rows if r["application"] == name)

    def test_pages_for_overlap_matches_paper_for_saturating_apps(self, result):
        # database: 76 in the paper; matrix: 8 and 9.
        assert self._row(result, "database")["pages_overlap"] in range(70, 85)
        assert self._row(result, "matrix-simplex")["pages_overlap"] in range(7, 10)
        assert self._row(result, "matrix-boeing")["pages_overlap"] in range(8, 11)

    def test_pages_for_overlap_matches_paper_for_array(self, result):
        assert self._row(result, "array-insert")["pages_overlap"] in range(2900, 3600)

    def test_constant_time_apps_correlate_highly(self, result):
        for name in ("array-insert", "database", "matrix-simplex"):
            assert self._row(result, name)["correlation"] > 0.95

    def test_boeing_correlates_visibly_worse(self, result):
        boeing = self._row(result, "matrix-boeing")["correlation"]
        simplex = self._row(result, "matrix-simplex")["correlation"]
        assert boeing < simplex
        assert boeing < 0.95  # the paper's outlier (0.830 there)
