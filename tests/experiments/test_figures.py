"""Shape checks for the figure experiments (reduced sweeps).

These are the paper's qualitative claims, asserted against measured
data: region structure (fig 1/3), falling stalls for saturating apps
(fig 4), cache insensitivity except median-total below 64 KB (fig 5),
persistence of the advantage across latencies (fig 8), and the
scalable/saturated split in logic-speed sensitivity (fig 9).
"""

import pytest

from repro.core.regions import Region, classify_regions
from repro.experiments import (
    fig1_regions,
    fig3_speedup,
    fig4_nonoverlap,
    fig5_cache,
    fig8_latency,
    fig9_logicspeed,
    table2_partitioning,
    table3_synthesis,
)

SWEEP = [0.5, 2, 8, 32, 128]


@pytest.fixture(scope="module")
def fig3_result():
    return fig3_speedup.run(
        apps=["array-insert", "database", "matrix-simplex"], sweep=SWEEP
    )


class TestFig1:
    def test_regions_in_canonical_order(self):
        result = fig1_regions.run()
        regions = result.column("region")
        assert regions[0] == "sub-page"
        assert "scalable" in regions
        assert regions[-1] == "saturated"

    def test_nonoverlap_falls_to_zero(self):
        result = fig1_regions.run()
        fractions = result.column("nonoverlap_fraction")
        assert fractions[0] > 0.9
        assert fractions[-1] == 0.0


class TestFig3:
    def test_speedups_exceed_one_in_scalable_region(self, fig3_result):
        for row in fig3_result.rows:
            if row["pages"] >= 2:
                assert row["speedup"] > 1.0, row

    def test_speedup_grows_with_pages_before_saturation(self, fig3_result):
        rows = [r for r in fig3_result.rows if r["application"] == "array-insert"]
        speedups = [r["speedup"] for r in rows]
        assert speedups == sorted(speedups)

    def test_matrix_saturates_near_table4_page_count(self, fig3_result):
        rows = [r for r in fig3_result.rows if r["application"] == "matrix-simplex"]
        by_pages = {r["pages"]: r["speedup"] for r in rows}
        # Growth from 8 to 32 pages is marginal: saturated by ~8 pages.
        assert by_pages[32] < 1.15 * by_pages[8]

    def test_database_saturated_speedup_magnitude(self, fig3_result):
        rows = [r for r in fig3_result.rows if r["application"] == "database"]
        final = rows[-1]["speedup"]
        assert 50 < final < 100  # ~74x at saturation

    def test_measured_regions_classify_like_figure1(self, fig3_result):
        rows = [r for r in fig3_result.rows if r["application"] == "database"]
        points = classify_regions(
            [r["pages"] for r in rows], [r["speedup"] for r in rows]
        )
        assert points[0].region is Region.SUB_PAGE
        assert points[-1].region in (Region.SATURATED, Region.SCALABLE)


class TestFig4:
    def test_saturating_app_reaches_complete_overlap(self):
        result = fig4_nonoverlap.run(apps=["matrix-simplex"], sweep=[1, 8, 32])
        stalls = result.column("stalled_percent")
        assert stalls[0] > 20
        assert stalls[-1] < 1

    def test_memory_centric_app_stays_stalled(self):
        result = fig4_nonoverlap.run(apps=["array-insert"], sweep=[1, 8, 32])
        assert min(result.column("stalled_percent")) > 80


class TestFig5:
    @pytest.fixture(scope="class")
    def result(self):
        return fig5_cache.run(
            apps=["database", "median-kernel", "median-total"],
            l1_sweep_kb=[32, 64, 256],
            n_pages=2,
        )

    def _series(self, result, app, column):
        return [r[column] for r in result.rows if r["application"] == app]

    def test_most_apps_insensitive_to_l1(self, result):
        for app in ("database", "median-kernel"):
            conv = self._series(result, app, "conventional_ms")
            assert max(conv) < 1.02 * min(conv)
            rad = self._series(result, app, "radram_ms")
            assert max(rad) < 1.02 * min(rad)

    def test_median_total_shows_stride_effects_below_64k(self, result):
        rad = self._series(result, "median-total", "radram_ms")
        at32, at64, at256 = rad
        assert at32 > 1.05 * at64  # the paper's below-64K degradation
        # Near-flat above 64K; the margin widened slightly when posted
        # victims started landing in L2 (writeback-install fix).
        assert at64 == pytest.approx(at256, rel=0.03)

    def test_l2_sweep_shows_no_significant_differences(self):
        result = fig5_cache.run(
            apps=["database"], l1_sweep_kb=[256, 1024, 4096], n_pages=2, level="l2"
        )
        conv = [r["conventional_ms"] for r in result.rows]
        assert max(conv) < 1.05 * min(conv)


class TestFig8:
    @pytest.fixture(scope="class")
    def result(self):
        return fig8_latency.run(
            apps=["database", "matrix-simplex"], latencies_ns=[0, 50, 300, 600]
        )

    def test_advantage_persists_across_latencies(self, result):
        for row in result.rows:
            assert row["speedup"] > 1.0

    def test_latency_sensitivity_differs_between_apps(self, result):
        # Section 8: the slope's sign and magnitude depend on the
        # instruction-to-stall ratio of each version.  Matrix is
        # strongly latency-sensitive (falls monotonically); database's
        # advantage moves far less over the whole 0-600 ns range.
        def series(app):
            return [r["speedup"] for r in result.rows if r["application"] == app]

        db = series("database")
        mx = series("matrix-simplex")
        assert mx == sorted(mx, reverse=True)
        assert max(mx) / min(mx) > 1.5
        assert max(db) / min(db) < 1.5


class TestFig9:
    @pytest.fixture(scope="class")
    def result(self):
        return fig9_logicspeed.run(
            apps=["database", "array-insert"], divisors=[2, 10, 100]
        )

    def _series(self, result, app, region):
        return [
            r["speedup"]
            for r in result.rows
            if r["application"] == app and r["region"] == region
        ]

    def test_scalable_region_sensitive_to_logic_speed(self, result):
        s = self._series(result, "array-insert", "scalable")
        assert s[0] > 3 * s[1] > 9 * s[2]

    def test_saturated_region_insensitive_at_reference(self, result):
        s = self._series(result, "database", "saturated")
        assert s[1] == pytest.approx(s[0], rel=0.05)  # divisor 10 vs 2


class TestTables:
    def test_table2_has_all_six_paper_rows(self):
        result = table2_partitioning.run()
        assert len(result.rows) == 6
        names = result.column("name")
        assert names.index("Matrix") > names.index("Median")  # grouped by class

    def test_table3_render_includes_paper_columns(self):
        result = table3_synthesis.run()
        assert len(result.rows) == 7
        assert "les_paper" in result.columns
        text = result.render()
        assert "MPEG-MMX" in text
