"""Tests for experiment result containers and exports."""

import csv
import io
import json

import pytest

from repro.experiments.results import ExperimentResult


def make_result():
    return ExperimentResult(
        experiment_id="figure-x",
        title="A test figure",
        columns=["application", "pages", "speedup"],
        rows=[
            {"application": "db", "pages": 1, "speedup": 2.5},
            {"application": "db", "pages": 4, "speedup": 9.0},
        ],
        notes=["synthetic"],
    )


class TestRender:
    def test_render_includes_all_cells(self):
        text = make_result().render()
        assert "figure-x" in text
        assert "2.5" in text and "9" in text
        assert "note: synthetic" in text

    def test_column_extraction(self):
        assert make_result().column("speedup") == [2.5, 9.0]

    def test_missing_column_yields_nones(self):
        assert make_result().column("ghost") == [None, None]

    def test_large_and_small_floats_formatted(self):
        result = ExperimentResult(
            "t", "t", ["v"], [{"v": 1234567.0}, {"v": 0.0001}, {"v": 0.0}]
        )
        text = result.render()
        assert "1.23e+06" in text
        assert "0.0001" in text


class TestExports:
    def test_csv_roundtrip(self):
        text = make_result().to_csv()
        rows = list(csv.DictReader(io.StringIO(text)))
        assert len(rows) == 2
        assert rows[0]["application"] == "db"
        assert float(rows[1]["speedup"]) == 9.0

    def test_json_roundtrip(self):
        data = json.loads(make_result().to_json())
        assert data["experiment_id"] == "figure-x"
        assert data["rows"][1]["pages"] == 4
        assert data["notes"] == ["synthetic"]

    def test_from_json_rebuilds_equal_result(self):
        original = make_result()
        rebuilt = ExperimentResult.from_json(original.to_json())
        assert rebuilt == original
        assert rebuilt.render() == original.render()

    def test_report_output_directory(self, tmp_path, capsys):
        from repro.experiments.report import main

        code = main(["--quick", "--only", "table-3", "--output", str(tmp_path)])
        assert code == 0
        assert (tmp_path / "table-3.csv").exists()
        assert (tmp_path / "table-3.json").exists()
        data = json.loads((tmp_path / "table-3.json").read_text())
        assert len(data["rows"]) == 7
