"""Tests for the simplex solver, cross-checked against scipy."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from scipy.optimize import linprog

from repro.lp.simplex import LPStatus, simplex_solve, solve_timed


def scipy_solve(c, a, b):
    """Reference: scipy solves min, we solve max."""
    res = linprog(-np.asarray(c, float), A_ub=a, b_ub=b, bounds=(0, None), method="highs")
    return res


class TestKnownProblems:
    def test_textbook_two_variable(self):
        # max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18.
        c = [3, 5]
        a = [[1, 0], [0, 2], [3, 2]]
        b = [4, 12, 18]
        result = simplex_solve(c, np.array(a, float), np.array(b, float))
        assert result.status is LPStatus.OPTIMAL
        assert result.objective == pytest.approx(36.0)
        assert result.x == pytest.approx([2.0, 6.0])

    def test_unbounded_detected(self):
        c = [1.0]
        a = [[-1.0]]
        b = [0.0]
        result = simplex_solve(np.array(c), np.array(a), np.array(b))
        assert result.status is LPStatus.UNBOUNDED

    def test_zero_objective_needs_no_pivots(self):
        result = simplex_solve(
            np.zeros(3), np.eye(3), np.ones(3)
        )
        assert result.pivots == 0
        assert result.objective == 0.0

    def test_degenerate_tableau_terminates(self):
        # Classic degeneracy: multiple constraints active at the
        # origin; Bland's rule must not cycle.
        c = [0.75, -150, 0.02, -6]
        a = [
            [0.25, -60, -0.04, 9],
            [0.5, -90, -0.02, 3],
            [0.0, 0, 1.0, 0],
        ]
        b = [0.0, 0.0, 1.0]
        result = simplex_solve(np.array(c), np.array(a, float), np.array(b, float))
        assert result.status is LPStatus.OPTIMAL
        ref = scipy_solve(c, a, b)
        assert result.objective == pytest.approx(-ref.fun, rel=1e-6)

    def test_dimension_mismatch_rejected(self):
        with pytest.raises(ValueError):
            simplex_solve(np.ones(2), np.ones((3, 3)), np.ones(3))

    def test_negative_rhs_rejected(self):
        with pytest.raises(ValueError):
            simplex_solve(np.ones(1), np.ones((1, 1)), -np.ones(1))


class TestAgainstScipy:
    @given(seed=st.integers(0, 200))
    @settings(max_examples=60, deadline=None)
    def test_random_bounded_problems_match(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(1, 6))
        m = int(rng.integers(1, 7))
        c = rng.uniform(-2, 3, n)
        a = rng.uniform(0, 2, (m, n))
        b = rng.uniform(0.5, 5, m)
        # Box constraints keep it bounded.
        a_full = np.vstack([a, np.eye(n)])
        b_full = np.concatenate([b, np.full(n, 10.0)])
        result = simplex_solve(c, a_full, b_full)
        assert result.status is LPStatus.OPTIMAL
        ref = scipy_solve(c, a_full, b_full)
        assert result.objective == pytest.approx(-ref.fun, abs=1e-6)
        # The solution is primal-feasible.
        assert np.all(a_full @ result.x <= b_full + 1e-6)
        assert np.all(result.x >= -1e-9)


class TestTimed:
    @staticmethod
    def _problem(n, m, density, seed=1):
        rng = np.random.default_rng(seed)
        c = rng.uniform(0.1, 1.0, n)
        a = (rng.random((m, n)) < density) * rng.uniform(0.2, 1.5, (m, n))
        b = rng.uniform(1.0, 4.0, m)
        return c, a, b

    def test_small_lp_stays_in_the_sub_page_region(self):
        # Tiny tableaus cannot amortize activation: the conventional
        # system wins — exactly the paper's sub-page region.
        c, a, b = self._problem(n=8, m=10, density=0.3)
        _, conv = solve_timed(c, a, b, system="conventional")
        _, rad = solve_timed(c, a, b, system="radram")
        assert rad.total_ns > conv.total_ns

    def test_large_sparse_lp_crosses_over(self):
        # Register-allocation-scale sparse tableaus: the gather saves
        # far more than activation costs.
        c, a, b = self._problem(n=48, m=80, density=0.08)
        result_conv, conv = solve_timed(c, a, b, system="conventional")
        result_rad, rad = solve_timed(c, a, b, system="radram")
        assert result_conv.objective == pytest.approx(result_rad.objective)
        assert rad.total_ns < conv.total_ns

    def test_unknown_system_rejected(self):
        with pytest.raises(ValueError):
            solve_timed(np.ones(1), np.ones((1, 1)), np.ones(1), system="abacus")
