"""Tests for LP-based register allocation."""

import networkx as nx
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lp.register import (
    AllocationResult,
    allocate_registers,
    interval_interference_graph,
)


class TestIntervalGraphs:
    def test_overlapping_ranges_interfere(self):
        graph = interval_interference_graph([(0, 10), (5, 15), (20, 30)])
        assert graph.has_edge("v0", "v1")
        assert not graph.has_edge("v0", "v2")

    def test_touching_ranges_do_not_interfere(self):
        graph = interval_interference_graph([(0, 10), (10, 20)])
        assert not graph.has_edge("v0", "v1")

    def test_custom_names(self):
        graph = interval_interference_graph([(0, 5), (3, 8)], names=["a", "b"])
        assert graph.has_edge("a", "b")


class TestAllocation:
    def test_no_interference_keeps_everything(self):
        graph = nx.empty_graph(5)
        result = allocate_registers(graph, k=1)
        assert len(result.in_registers) == 5
        assert not result.spilled

    def test_clique_bounded_by_k(self):
        graph = nx.complete_graph(["a", "b", "c", "d"])
        result = allocate_registers(graph, k=2)
        assert len(result.in_registers) == 2
        assert len(result.spilled) == 2

    def test_weights_steer_spills(self):
        graph = nx.complete_graph(["hot", "cold"])
        result = allocate_registers(graph, k=1, weights={"hot": 100.0, "cold": 1.0})
        assert result.in_registers == {"hot"}
        assert result.spilled == {"cold"}

    def test_zero_registers_spills_all_interfering(self):
        graph = nx.complete_graph(["a", "b"])
        result = allocate_registers(graph, k=0)
        assert not result.in_registers

    def test_empty_graph(self):
        result = allocate_registers(nx.Graph(), k=4)
        assert result.saved_cost == 0.0

    def test_interval_graphs_round_tightly(self):
        # Straight-line code: interval interference graphs are
        # perfect, so the LP bound is achieved exactly.
        ranges = [(0, 4), (1, 6), (2, 8), (5, 9), (7, 12), (10, 14)]
        graph = interval_interference_graph(ranges)
        result = allocate_registers(graph, k=2)
        assert result.is_lp_tight
        # Verify feasibility: no point in time has > k live residents.
        for t in range(15):
            live = [
                f"v{i}"
                for i, (s, e) in enumerate(ranges)
                if s <= t < e and f"v{i}" in result.in_registers
            ]
            assert len(live) <= 2

    @given(seed=st.integers(0, 100))
    @settings(max_examples=40, deadline=None)
    def test_allocations_always_clique_feasible(self, seed):
        import numpy as np

        rng = np.random.default_rng(seed)
        n = int(rng.integers(2, 9))
        starts = rng.integers(0, 20, n)
        lengths = rng.integers(1, 10, n)
        ranges = [(int(s), int(s + l)) for s, l in zip(starts, lengths)]
        graph = interval_interference_graph(ranges)
        k = int(rng.integers(1, 4))
        result = allocate_registers(graph, k=k)
        for clique in nx.find_cliques(graph):
            resident = [v for v in clique if v in result.in_registers]
            assert len(resident) <= k

    @given(seed=st.integers(0, 60))
    @settings(max_examples=30, deadline=None)
    def test_saved_cost_never_exceeds_lp_bound(self, seed):
        import numpy as np

        rng = np.random.default_rng(seed)
        graph = nx.gnp_random_graph(int(rng.integers(2, 8)), 0.5, seed=seed)
        result = allocate_registers(graph, k=2)
        assert result.saved_cost <= result.lp_bound + 1e-6

    def test_rejects_negative_registers(self):
        with pytest.raises(ValueError):
            allocate_registers(nx.Graph(), k=-1)
