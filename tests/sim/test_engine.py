"""Unit tests for the discrete-event engine."""

import pytest

from repro.sim.engine import Engine
from repro.sim.errors import SimulationError


class TestEngine:
    def test_events_run_in_time_order(self):
        eng = Engine()
        order = []
        eng.schedule(30, lambda: order.append("c"))
        eng.schedule(10, lambda: order.append("a"))
        eng.schedule(20, lambda: order.append("b"))
        eng.run_until_idle()
        assert order == ["a", "b", "c"]
        assert eng.now == 30

    def test_ties_break_by_insertion_order(self):
        eng = Engine()
        order = []
        eng.schedule(5, lambda: order.append(1))
        eng.schedule(5, lambda: order.append(2))
        eng.run_until_idle()
        assert order == [1, 2]

    def test_run_until_stops_at_deadline(self):
        eng = Engine()
        order = []
        eng.schedule(10, lambda: order.append("early"))
        eng.schedule(100, lambda: order.append("late"))
        eng.run_until(50)
        assert order == ["early"]
        assert eng.now == 50
        assert eng.peek_time() == 100

    def test_cannot_schedule_in_the_past(self):
        eng = Engine()
        eng.advance(100)
        with pytest.raises(SimulationError):
            eng.schedule_at(50, lambda: None)

    def test_events_may_schedule_events(self):
        eng = Engine()
        seen = []

        def first():
            seen.append(eng.now)
            eng.schedule(5, lambda: seen.append(eng.now))

        eng.schedule(10, first)
        eng.run_until_idle()
        assert seen == [10, 15]

    def test_step_returns_false_when_empty(self):
        assert Engine().step() is False

    def test_advance_rejects_negative(self):
        with pytest.raises(SimulationError):
            Engine().advance(-1)
