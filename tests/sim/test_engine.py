"""Unit tests for the discrete-event engine."""

import pytest

from repro.sim.engine import Engine
from repro.sim.errors import SimulationError


class TestEngine:
    def test_events_run_in_time_order(self):
        eng = Engine()
        order = []
        eng.schedule(30, lambda: order.append("c"))
        eng.schedule(10, lambda: order.append("a"))
        eng.schedule(20, lambda: order.append("b"))
        eng.run_until_idle()
        assert order == ["a", "b", "c"]
        assert eng.now == 30

    def test_ties_break_by_insertion_order(self):
        eng = Engine()
        order = []
        eng.schedule(5, lambda: order.append(1))
        eng.schedule(5, lambda: order.append(2))
        eng.run_until_idle()
        assert order == [1, 2]

    def test_run_until_stops_at_deadline(self):
        eng = Engine()
        order = []
        eng.schedule(10, lambda: order.append("early"))
        eng.schedule(100, lambda: order.append("late"))
        eng.run_until(50)
        assert order == ["early"]
        assert eng.now == 50
        assert eng.peek_time() == 100

    def test_cannot_schedule_in_the_past(self):
        eng = Engine()
        eng.advance(100)
        with pytest.raises(SimulationError):
            eng.schedule_at(50, lambda: None)

    def test_events_may_schedule_events(self):
        eng = Engine()
        seen = []

        def first():
            seen.append(eng.now)
            eng.schedule(5, lambda: seen.append(eng.now))

        eng.schedule(10, first)
        eng.run_until_idle()
        assert seen == [10, 15]

    def test_step_returns_false_when_empty(self):
        assert Engine().step() is False

    def test_advance_rejects_negative(self):
        with pytest.raises(SimulationError):
            Engine().advance(-1)


class TestRunUntilDeadlineScheduling:
    """``run_until`` must drain events its own callbacks schedule at
    exactly the deadline, within the same call (regression guard)."""

    def test_deadline_callback_schedules_at_deadline(self):
        eng = Engine()
        seen = []

        def at_deadline():
            seen.append("first")
            eng.schedule(0.0, lambda: seen.append("second"))

        eng.schedule(100, at_deadline)
        eng.run_until(100)
        assert seen == ["first", "second"]
        assert eng.peek_time() is None
        assert eng.now == 100

    def test_cascade_of_same_timestamp_events_at_deadline(self):
        eng = Engine()
        seen = []

        def chain(depth):
            def cb():
                seen.append(depth)
                if depth < 5:
                    eng.schedule_at(100, chain(depth + 1))

            return cb

        eng.schedule_at(100, chain(1))
        eng.run_until(100)
        assert seen == [1, 2, 3, 4, 5]

    def test_pre_deadline_callback_schedules_at_deadline(self):
        eng = Engine()
        seen = []
        eng.schedule(60, lambda: eng.schedule_at(100, lambda: seen.append("d")))
        eng.run_until(100)
        assert seen == ["d"]

    def test_events_after_deadline_stay_queued(self):
        eng = Engine()
        seen = []

        def at_deadline():
            seen.append("now")
            eng.schedule(0.0, lambda: seen.append("also-now"))
            eng.schedule(1.0, lambda: seen.append("later"))

        eng.schedule(100, at_deadline)
        eng.run_until(100)
        assert seen == ["now", "also-now"]
        assert eng.peek_time() == 101
        eng.run_until_idle()
        assert seen == ["now", "also-now", "later"]

    def test_consecutive_run_until_calls_see_no_leftovers(self):
        eng = Engine()
        seen = []
        eng.schedule(50, lambda: eng.schedule_at(50, lambda: seen.append("a")))
        eng.run_until(50)
        assert seen == ["a"]
        eng.run_until(50)  # idempotent: nothing <= 50 remains
        assert seen == ["a"]
