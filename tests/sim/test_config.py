"""Unit tests for machine configuration (paper Table 1)."""

import pytest

from repro.sim.config import (
    KB,
    MB,
    BusConfig,
    CacheConfig,
    CPUConfig,
    DRAMConfig,
    MachineConfig,
)
from repro.sim.errors import ConfigError


class TestCPUConfig:
    def test_reference_clock_is_1ghz(self):
        cpu = CPUConfig()
        assert cpu.clock_hz == 1e9
        assert cpu.cycle_ns == 1.0

    def test_compute_time_scales_with_ops(self):
        cpu = CPUConfig()
        assert cpu.compute_ns(100) == 100.0

    def test_compute_time_scales_with_clock(self):
        cpu = CPUConfig(clock_hz=2e9)
        assert cpu.compute_ns(100) == 50.0

    def test_issue_width_divides_time(self):
        cpu = CPUConfig(issue_width=2)
        assert cpu.compute_ns(100) == 50.0

    def test_rejects_nonpositive_clock(self):
        with pytest.raises(ConfigError):
            CPUConfig(clock_hz=0)

    def test_rejects_zero_issue_width(self):
        with pytest.raises(ConfigError):
            CPUConfig(issue_width=0)


class TestCacheConfig:
    def test_reference_l1d_geometry(self):
        cfg = CacheConfig(size_bytes=64 * KB, assoc=2)
        assert cfg.n_sets == 64 * KB // (2 * 32)

    def test_rejects_nondivisible_size(self):
        with pytest.raises(ConfigError):
            CacheConfig(size_bytes=1000, assoc=3, line_bytes=32)

    def test_rejects_negative_hit_latency(self):
        with pytest.raises(ConfigError):
            CacheConfig(size_bytes=64 * KB, assoc=2, hit_ns=-1)


class TestBusConfig:
    def test_32bits_per_10ns(self):
        bus = BusConfig()
        assert bus.transfer_ns(4) == 10.0

    def test_rounds_up_to_whole_transfers(self):
        bus = BusConfig()
        assert bus.transfer_ns(5) == 20.0
        assert bus.transfer_ns(32) == 80.0

    def test_zero_bytes_is_free(self):
        assert BusConfig().transfer_ns(0) == 0.0


class TestMachineConfig:
    def test_reference_matches_table1(self):
        m = MachineConfig.reference()
        assert m.cpu.clock_hz == 1e9
        assert m.l1i.size_bytes == 64 * KB
        assert m.l1d.size_bytes == 64 * KB
        assert m.l2.size_bytes == 1 * MB
        assert m.dram.miss_latency_ns == 50.0
        assert m.bus.bytes_per_transfer == 4
        assert m.bus.ns_per_transfer == 10.0

    def test_l1d_sweep_preserves_other_params(self):
        m = MachineConfig.reference().with_l1d_size(32 * KB)
        assert m.l1d.size_bytes == 32 * KB
        assert m.l2.size_bytes == 1 * MB

    def test_miss_latency_sweep(self):
        m = MachineConfig.reference().with_miss_latency(600.0)
        assert m.dram.miss_latency_ns == 600.0

    def test_l2_sweep(self):
        m = MachineConfig.reference().with_l2_size(4 * MB)
        assert m.l2.size_bytes == 4 * MB

    def test_configs_are_frozen(self):
        m = MachineConfig.reference()
        with pytest.raises(Exception):
            m.cpu.clock_hz = 2e9  # type: ignore[misc]
