"""Tests for SMP co-simulation with Active Pages."""

import numpy as np
import pytest

from repro.core.functions import PageTask
from repro.radram.config import RADramConfig
from repro.radram.system import RADramMemorySystem
from repro.sim import ops as O
from repro.sim.errors import OperationError
from repro.sim.memory import PagedMemory
from repro.sim.smp import AtomicRMW, Barrier, SMPMachine


def make_smp(n_cpus=2, radram=False):
    memory = PagedMemory(page_bytes=4096)
    memsys = None
    if radram:
        memsys = RADramMemorySystem(RADramConfig.reference().with_page_bytes(4096))
    return SMPMachine(n_cpus, memory=memory, memsys=memsys)


class TestBasics:
    def test_independent_streams_run_concurrently(self):
        smp = make_smp(2)
        stats = smp.run([[O.Compute(1000)], [O.Compute(2000)]])
        assert stats[0].total_ns == 1000.0
        assert stats[1].total_ns == 2000.0
        assert smp.makespan_ns == 2000.0

    def test_private_l1_shared_l2(self):
        smp = make_smp(2)
        smp.run([[O.MemRead(0, 32)], [O.MemRead(0, 32)]])
        # CPU0 misses to DRAM; CPU1's private L1 misses but hits in the
        # shared L2.
        assert smp.dram.reads == 1
        assert smp.processors[1].l1d.stats.misses == 1

    def test_stream_count_must_match(self):
        with pytest.raises(ValueError):
            make_smp(2).run([[O.Compute(1)]])

    def test_single_cpu_matches_machine(self):
        from repro.sim.machine import Machine

        ops = [O.Compute(500), O.MemRead(0, 64), O.Compute(100)]
        single = Machine().run(iter(list(ops)))
        smp = make_smp(1)
        (stats,) = smp.run([list(ops)])
        assert stats.total_ns == single.total_ns


class TestBarrier:
    def test_barrier_aligns_clocks(self):
        smp = make_smp(2)
        streams = [
            [O.Compute(100), Barrier(1), O.Compute(10)],
            [O.Compute(5000), Barrier(1), O.Compute(10)],
        ]
        stats = smp.run(streams)
        assert stats[0].total_ns == stats[1].total_ns == 5010.0
        assert stats[0].wait_ns == pytest.approx(4900.0)

    def test_missing_barrier_partner_deadlocks(self):
        smp = make_smp(2)
        with pytest.raises(OperationError, match="deadlock"):
            smp.run([[Barrier(1)], [O.Compute(10)]])

    def test_multiple_barriers_in_sequence(self):
        smp = make_smp(2)
        streams = [
            [O.Compute(10), Barrier(1), O.Compute(10), Barrier(2)],
            [O.Compute(20), Barrier(1), O.Compute(5), Barrier(2)],
        ]
        stats = smp.run(streams)
        assert stats[0].total_ns == stats[1].total_ns


class TestAtomics:
    def test_test_and_set_returns_old_value(self):
        smp = make_smp(2)
        region = smp.memory.alloc(64)
        lock = region.base
        smp.run([[AtomicRMW(lock, "tas")], [O.Compute(10_000), AtomicRMW(lock, "tas")]])
        # CPU0 gets the lock first (earlier in global time).
        assert smp.rmw_results[0] == 0
        assert smp.rmw_results[1] == 1

    def test_fetch_and_add_accumulates_atomically(self):
        smp = make_smp(4)
        region = smp.memory.alloc(64)
        counter = region.base
        streams = [[AtomicRMW(counter, "add", operand=5)] for _ in range(4)]
        smp.run(streams)
        value = int(smp.memory.read(counter, 4).view(np.uint32)[0])
        assert value == 20

    def test_unknown_atomic_rejected(self):
        smp = make_smp(1)
        region = smp.memory.alloc(64)
        with pytest.raises(OperationError):
            smp.run([[AtomicRMW(region.base, "cas2")]])

    def test_atomics_pay_uncached_latency(self):
        smp = make_smp(1)
        region = smp.memory.alloc(64)
        (stats,) = smp.run([[AtomicRMW(region.base, "tas")]])
        assert stats.mem_ns >= 2 * smp.config.dram.miss_latency_ns


class TestSMPActivePages:
    def test_two_cpus_split_activation_work(self):
        # The saturated region is activation-bound: two CPUs
        # dispatching halves the kernel time (Section 2's SMP note).
        def makespan(n_cpus):
            smp = make_smp(n_cpus, radram=True)
            pages = 64
            share = pages // n_cpus
            streams = []
            for cpu in range(n_cpus):
                ops = []
                for p in range(cpu * share, (cpu + 1) * share):
                    ops.append(O.Activate(p, 8, PageTask.simple(100)))
                for p in range(cpu * share, (cpu + 1) * share):
                    ops.append(O.WaitPage(p))
                ops.append(Barrier(1))
                streams.append(ops)
            smp.run(streams)
            return smp.makespan_ns

        t1, t2 = makespan(1), makespan(2)
        assert t2 < 0.65 * t1

    def test_pages_visible_to_both_cpus(self):
        smp = make_smp(2, radram=True)
        streams = [
            [O.Activate(0, 1, PageTask.simple(1000))],
            [O.Compute(50_000), O.WaitPage(0)],
        ]
        stats = smp.run(streams)
        # CPU1 waited on a page CPU0 activated: no stall (long compute).
        assert stats[1].wait_ns == 0.0
