"""Cross-validation of the cache against an independent reference model.

The reference implementation below is written for obviousness, not
speed — an ordered dict of resident lines per set — and is developed
from the textbook definition of a set-associative LRU write-back
cache.  Hypothesis drives both models with the same access strings and
demands identical hit/miss/writeback decisions on every access.
"""

from collections import OrderedDict
from typing import Dict, List, Tuple

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.bus import Bus
from repro.sim.cache import Cache
from repro.sim.config import BusConfig, CacheConfig, DRAMConfig
from repro.sim.dram import DRAM


class ReferenceCache:
    """Textbook set-associative LRU write-back write-allocate cache."""

    def __init__(self, n_sets: int, assoc: int) -> None:
        self.n_sets = n_sets
        self.assoc = assoc
        # set index -> OrderedDict[tag, dirty]; first item = LRU.
        self.sets: Dict[int, "OrderedDict[int, bool]"] = {
            s: OrderedDict() for s in range(n_sets)
        }

    def access(self, line_addr: int, write: bool) -> Tuple[bool, bool]:
        """Returns (hit, wrote_back_dirty_victim)."""
        s = line_addr % self.n_sets
        tag = line_addr // self.n_sets
        entries = self.sets[s]
        if tag in entries:
            dirty = entries.pop(tag)
            entries[tag] = dirty or write
            return True, False
        wrote_back = False
        if len(entries) >= self.assoc:
            _, victim_dirty = entries.popitem(last=False)
            wrote_back = victim_dirty
        entries[tag] = write
        return False, wrote_back


def make_cache(size=512, assoc=2, line=32):
    dram = DRAM(DRAMConfig(), Bus(BusConfig()))
    return Cache(
        "L1",
        CacheConfig(size_bytes=size, assoc=assoc, line_bytes=line, hit_ns=1.0),
        dram=dram,
    )


access_strings = st.lists(
    st.tuples(st.integers(min_value=0, max_value=127), st.booleans()),
    min_size=1,
    max_size=400,
)


class TestAgainstReference:
    @given(accesses=access_strings)
    @settings(max_examples=100, deadline=None)
    def test_hit_miss_decisions_identical(self, accesses):
        cache = make_cache()
        ref = ReferenceCache(n_sets=cache.config.n_sets, assoc=2)
        for line_addr, write in accesses:
            hits_before = cache.stats.hits
            cache.access_line(line_addr, write)
            model_hit = cache.stats.hits == hits_before + 1
            ref_hit, _ = ref.access(line_addr, write)
            assert model_hit == ref_hit, (line_addr, write)

    @given(accesses=access_strings)
    @settings(max_examples=100, deadline=None)
    def test_writeback_decisions_identical(self, accesses):
        cache = make_cache()
        ref = ReferenceCache(n_sets=cache.config.n_sets, assoc=2)
        for line_addr, write in accesses:
            wb_before = cache.stats.writebacks
            cache.access_line(line_addr, write)
            model_wb = cache.stats.writebacks == wb_before + 1
            _, ref_wb = ref.access(line_addr, write)
            assert model_wb == ref_wb, (line_addr, write)

    @given(
        accesses=access_strings,
        assoc=st.sampled_from([1, 2, 4]),
    )
    @settings(max_examples=60, deadline=None)
    def test_residency_sets_identical(self, accesses, assoc):
        cache = make_cache(size=32 * 8 * assoc, assoc=assoc)
        ref = ReferenceCache(n_sets=8, assoc=assoc)
        for line_addr, write in accesses:
            cache.access_line(line_addr, write)
            ref.access(line_addr, write)
        resident_ref = {
            tag * 8 + s for s, entries in ref.sets.items() for tag in entries
        }
        resident_model = {
            line for line in range(256) if cache.contains(line)
        }
        assert resident_model == resident_ref
