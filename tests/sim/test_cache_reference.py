"""Cross-validation of the cache against an independent reference model.

The reference implementation below is written for obviousness, not
speed — an ordered dict of resident lines per set — and is developed
from the textbook definition of a set-associative LRU write-back
cache.  Hypothesis drives both models with the same access strings and
demands identical hit/miss/writeback decisions on every access.
"""

from collections import OrderedDict
from typing import Dict, List, Tuple

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.bus import Bus
from repro.sim.cache import Cache
from repro.sim.config import BusConfig, CacheConfig, DRAMConfig
from repro.sim.dram import DRAM


class ReferenceCache:
    """Textbook set-associative LRU write-back write-allocate cache."""

    def __init__(self, n_sets: int, assoc: int) -> None:
        self.n_sets = n_sets
        self.assoc = assoc
        # set index -> OrderedDict[tag, dirty]; first item = LRU.
        self.sets: Dict[int, "OrderedDict[int, bool]"] = {
            s: OrderedDict() for s in range(n_sets)
        }
        self.last_victim = None  # (line_addr, dirty) of the last dirty evictee

    def access(self, line_addr: int, write: bool) -> Tuple[bool, bool]:
        """Returns (hit, wrote_back_dirty_victim).

        ``self.last_victim`` is set to ``(line_addr, dirty)`` of the
        evicted line (or ``None``) so a hierarchy can forward it.
        """
        s = line_addr % self.n_sets
        tag = line_addr // self.n_sets
        entries = self.sets[s]
        self.last_victim = None
        if tag in entries:
            dirty = entries.pop(tag)
            entries[tag] = dirty or write
            return True, False
        wrote_back = False
        if len(entries) >= self.assoc:
            victim_tag, victim_dirty = entries.popitem(last=False)
            wrote_back = victim_dirty
            if victim_dirty:
                self.last_victim = (victim_tag * self.n_sets + s, True)
        entries[tag] = write
        return False, wrote_back

    def install(self, line_addr: int) -> bool:
        """Accept a posted dirty victim; returns True if a dirty victim
        was evicted in turn (a cascaded writeback)."""
        s = line_addr % self.n_sets
        tag = line_addr // self.n_sets
        entries = self.sets[s]
        if tag in entries:
            entries.pop(tag)
            entries[tag] = True
            return False
        cascaded = False
        if len(entries) >= self.assoc:
            _, victim_dirty = entries.popitem(last=False)
            cascaded = victim_dirty
        entries[tag] = True
        return cascaded


def make_cache(size=512, assoc=2, line=32):
    dram = DRAM(DRAMConfig(), Bus(BusConfig()))
    return Cache(
        "L1",
        CacheConfig(size_bytes=size, assoc=assoc, line_bytes=line, hit_ns=1.0),
        dram=dram,
    )


access_strings = st.lists(
    st.tuples(st.integers(min_value=0, max_value=127), st.booleans()),
    min_size=1,
    max_size=400,
)


class TestAgainstReference:
    @given(accesses=access_strings)
    @settings(max_examples=100, deadline=None)
    def test_hit_miss_decisions_identical(self, accesses):
        cache = make_cache()
        ref = ReferenceCache(n_sets=cache.config.n_sets, assoc=2)
        for line_addr, write in accesses:
            hits_before = cache.stats.hits
            cache.access_line(line_addr, write)
            model_hit = cache.stats.hits == hits_before + 1
            ref_hit, _ = ref.access(line_addr, write)
            assert model_hit == ref_hit, (line_addr, write)

    @given(accesses=access_strings)
    @settings(max_examples=100, deadline=None)
    def test_writeback_decisions_identical(self, accesses):
        cache = make_cache()
        ref = ReferenceCache(n_sets=cache.config.n_sets, assoc=2)
        for line_addr, write in accesses:
            wb_before = cache.stats.writebacks
            cache.access_line(line_addr, write)
            model_wb = cache.stats.writebacks == wb_before + 1
            _, ref_wb = ref.access(line_addr, write)
            assert model_wb == ref_wb, (line_addr, write)

    @given(
        accesses=access_strings,
        assoc=st.sampled_from([1, 2, 4]),
    )
    @settings(max_examples=60, deadline=None)
    def test_residency_sets_identical(self, accesses, assoc):
        cache = make_cache(size=32 * 8 * assoc, assoc=assoc)
        ref = ReferenceCache(n_sets=8, assoc=assoc)
        for line_addr, write in accesses:
            cache.access_line(line_addr, write)
            ref.access(line_addr, write)
        resident_ref = {
            tag * 8 + s for s, entries in ref.sets.items() for tag in entries
        }
        resident_model = {
            line for line in range(256) if cache.contains(line)
        }
        assert resident_model == resident_ref

    @given(
        set_index=st.integers(min_value=0, max_value=7),
        ways=st.lists(
            st.tuples(st.integers(min_value=0, max_value=15), st.booleans()),
            min_size=1,
            max_size=200,
        ),
    )
    @settings(max_examples=60, deadline=None)
    def test_single_set_conflict_streams(self, set_index, ways):
        """All accesses land in one set: pure conflict/LRU behaviour."""
        cache = make_cache(size=32 * 8 * 2, assoc=2, line=32)  # 8 sets
        ref = ReferenceCache(n_sets=8, assoc=2)
        for way, write in ways:
            line_addr = set_index + way * 8
            hits_before = cache.stats.hits
            wb_before = cache.stats.writebacks
            cache.access_line(line_addr, write)
            ref_hit, ref_wb = ref.access(line_addr, write)
            assert (cache.stats.hits == hits_before + 1) == ref_hit
            assert (cache.stats.writebacks == wb_before + 1) == ref_wb


class ReferenceHierarchy:
    """Two chained reference caches mirroring ``build_hierarchy``.

    The L2 sees the L1's demand misses (as reads: the model fills from
    below with ``write=False``) plus its posted dirty victims, which
    are *installed* dirty in the L2 after the fill — matching
    ``Cache._writeback``, which charges only the next level's hit time
    but keeps the victim architecturally resident there.
    """

    def __init__(self, l1_sets, l1_assoc, l2_sets, l2_assoc):
        self.l1 = ReferenceCache(n_sets=l1_sets, assoc=l1_assoc)
        self.l2 = ReferenceCache(n_sets=l2_sets, assoc=l2_assoc)

    def access(self, line_addr, write):
        """Returns (l1_hit, l1_writeback, l2_hit_or_None)."""
        l1_hit, l1_wb = self.l1.access(line_addr, write)
        l2_hit = None
        if not l1_hit:
            l2_hit, _ = self.l2.access(line_addr, write=False)
            if self.l1.last_victim is not None:
                self.l2.install(self.l1.last_victim[0])
        return l1_hit, l1_wb, l2_hit


def make_hierarchy(l1_size=256, l1_assoc=2, l2_size=1024, l2_assoc=4, line=32):
    dram = DRAM(DRAMConfig(), Bus(BusConfig()))
    l2 = Cache(
        "L2",
        CacheConfig(size_bytes=l2_size, assoc=l2_assoc, line_bytes=line, hit_ns=6.0),
        dram=dram,
    )
    l1 = Cache(
        "L1",
        CacheConfig(size_bytes=l1_size, assoc=l1_assoc, line_bytes=line, hit_ns=1.0),
        next_level=l2,
    )
    return l1, l2


class TestMultiLevelAgainstReference:
    """The two-level hierarchy against chained reference caches."""

    @given(accesses=access_strings)
    @settings(max_examples=60, deadline=None)
    def test_both_levels_decisions_identical(self, accesses):
        l1, l2 = make_hierarchy()
        ref = ReferenceHierarchy(
            l1_sets=l1.config.n_sets,
            l1_assoc=l1.config.assoc,
            l2_sets=l2.config.n_sets,
            l2_assoc=l2.config.assoc,
        )
        for line_addr, write in accesses:
            l1_hits = l1.stats.hits
            l2_hits = l2.stats.hits
            l2_accesses = l2.stats.accesses
            l1.access_line(line_addr, write)
            model_l1_hit = l1.stats.hits == l1_hits + 1
            ref_l1_hit, _, ref_l2_hit = ref.access(line_addr, write)
            assert model_l1_hit == ref_l1_hit, (line_addr, write)
            if ref_l1_hit:
                # An L1 hit must not generate L2 traffic.
                assert l2.stats.accesses == l2_accesses
            else:
                assert l2.stats.accesses == l2_accesses + 1
                assert (l2.stats.hits == l2_hits + 1) == ref_l2_hit

    @given(accesses=access_strings)
    @settings(max_examples=60, deadline=None)
    def test_l1_writebacks_install_victims_in_l2(self, accesses):
        l1, l2 = make_hierarchy()
        ref = ReferenceHierarchy(
            l1_sets=l1.config.n_sets,
            l1_assoc=l1.config.assoc,
            l2_sets=l2.config.n_sets,
            l2_assoc=l2.config.assoc,
        )
        for line_addr, write in accesses:
            wb_before = l1.stats.writebacks
            l1.access_line(line_addr, write)
            _, ref_wb, _ = ref.access(line_addr, write)
            assert (l1.stats.writebacks == wb_before + 1) == ref_wb
        # Posted dirty victims are installed in L2, so the model's L2
        # residency must equal the reference L2's (demand fills plus
        # installed victims).
        resident_ref = {
            tag * ref.l2.n_sets + s
            for s, entries in ref.l2.sets.items()
            for tag in entries
        }
        resident_model = {line for line in range(256) if l2.contains(line)}
        assert resident_model == resident_ref

    def test_mostly_included_working_set(self):
        """Deterministic inclusion check: after touching a small
        working set, every L1-resident line is also L2-resident."""
        l1, l2 = make_hierarchy(l1_size=256, l2_size=2048)
        for line in range(8):
            l1.access_line(line, write=False)
        for line in range(256):
            if l1.contains(line):
                assert l2.contains(line)
