"""Unit tests for the in-order processor model and machine assembly."""

import pytest

from repro.sim import ops as O
from repro.sim.config import MachineConfig
from repro.sim.errors import OperationError
from repro.sim.machine import Machine


def run_ops(ops, config=None):
    machine = Machine(config=config)
    return machine, machine.run(iter(ops))


class TestCompute:
    def test_compute_advances_one_ns_per_op(self):
        _, stats = run_ops([O.Compute(1000)])
        assert stats.compute_ns == 1000.0
        assert stats.total_ns == 1000.0

    def test_multiple_ops_accumulate(self):
        _, stats = run_ops([O.Compute(100), O.Compute(200)])
        assert stats.total_ns == 300.0


class TestMemoryOps:
    def test_cold_read_pays_l1_l2_dram(self):
        _, stats = run_ops([O.MemRead(addr=0, nbytes=4)])
        # L1 hit_ns(1) + L2 hit_ns(6) + 50 DRAM + 80 bus for a 32B line.
        assert stats.mem_ns == pytest.approx(1 + 6 + 50 + 80)

    def test_warm_read_is_l1_hit(self):
        _, stats = run_ops([O.MemRead(0, 4), O.MemRead(0, 4)])
        assert stats.mem_ns == pytest.approx((1 + 6 + 50 + 80) + 1)

    def test_sequential_block_misses_once_per_line(self):
        machine, stats = run_ops([O.MemRead(0, 1024)])
        assert machine.l1d.stats.misses == 1024 // 32

    def test_strided_read_misses_every_line(self):
        machine, _ = run_ops([O.StridedRead(addr=0, count=8, stride_bytes=512, elem_bytes=4)])
        assert machine.l1d.stats.misses == 8

    def test_gather_and_scatter_round_trip(self):
        addrs = [0, 64, 128]
        machine, _ = run_ops([O.GatherRead(addrs), O.ScatterWrite(addrs)])
        assert machine.l1d.stats.misses == 3
        assert machine.l1d.stats.hits == 3

    def test_writes_mark_lines_dirty(self):
        machine, _ = run_ops([O.MemWrite(0, 32)])
        machine.l1d.invalidate_all()  # drops without writeback accounting
        assert machine.l1d.stats.misses == 1


class TestPhases:
    def test_phase_accumulates_enclosed_time(self):
        _, stats = run_ops(
            [
                O.BeginPhase("activation"),
                O.Compute(500),
                O.EndPhase("activation"),
                O.Compute(100),
            ]
        )
        assert stats.phase_ns["activation"] == 500.0
        assert stats.phase_counts["activation"] == 1

    def test_phase_mean_over_occurrences(self):
        _, stats = run_ops(
            [
                O.BeginPhase("post"),
                O.Compute(100),
                O.EndPhase("post"),
                O.BeginPhase("post"),
                O.Compute(300),
                O.EndPhase("post"),
            ]
        )
        assert stats.phase_mean_ns("post") == 200.0

    def test_mismatched_phase_raises(self):
        with pytest.raises(ValueError):
            run_ops([O.BeginPhase("a"), O.EndPhase("b")])


class TestConventionalSystem:
    def test_rejects_activate(self):
        with pytest.raises(OperationError):
            run_ops([O.Activate(page_no=0, descriptor_words=1, task=None)])

    def test_rejects_wait(self):
        with pytest.raises(OperationError):
            run_ops([O.WaitPage(page_no=0)])

    def test_faster_clock_shrinks_compute_only(self):
        from dataclasses import replace
        from repro.sim.config import CPUConfig

        ref = MachineConfig.reference()
        fast = replace(ref, cpu=CPUConfig(clock_hz=2e9))
        _, s_ref = run_ops([O.Compute(1000), O.MemRead(0, 4)], config=ref)
        _, s_fast = run_ops([O.Compute(1000), O.MemRead(0, 4)], config=fast)
        assert s_fast.compute_ns == s_ref.compute_ns / 2
        assert s_fast.mem_ns == s_ref.mem_ns


class TestPollGuard:
    def test_conventional_memory_is_passive(self):
        """Conventional memory declares needs_poll=False, so the run
        loop skips the per-op poll call entirely."""
        from repro.sim.machine import ConventionalMemorySystem
        from repro.sim.processor import MemorySystemBase

        assert MemorySystemBase.needs_poll is False
        assert ConventionalMemorySystem().needs_poll is False

    def test_radram_keeps_instruction_granularity_polling(self):
        from repro.radram.system import RADramMemorySystem

        assert RADramMemorySystem.needs_poll is True

    def test_poll_skipped_for_passive_system(self):
        """A passive system's poll is never invoked during a run."""
        from repro.sim.machine import ConventionalMemorySystem

        class CountingMemsys(ConventionalMemorySystem):
            def __init__(self):
                self.polls = 0

            def poll(self, proc):
                self.polls += 1

        m = Machine(MachineConfig.reference(), memsys=CountingMemsys())
        m.run([O.Compute(1), O.MemRead(0, 64), O.Compute(1)])
        assert m.memsys.polls == 0

    def test_polling_system_is_polled_per_op(self):
        from repro.sim.machine import ConventionalMemorySystem

        class CountingMemsys(ConventionalMemorySystem):
            needs_poll = True

            def __init__(self):
                self.polls = 0

            def poll(self, proc):
                self.polls += 1

        m = Machine(MachineConfig.reference(), memsys=CountingMemsys())
        m.run([O.Compute(1), O.MemRead(0, 64), O.Compute(1)])
        assert m.memsys.polls == 3


class TestMachineReset:
    def test_reset_clears_timing_but_not_memory(self):
        machine = Machine()
        region = machine.memory.alloc(64)
        import numpy as np

        machine.memory.write(region.base, np.full(16, 3, dtype=np.uint8))
        machine.run(iter([O.Compute(10), O.MemRead(0, 64)]))
        machine.reset_timing()
        assert machine.processor.now == 0.0
        assert machine.l1d.stats.accesses == 0
        assert machine.memory.read(region.base, 16)[0] == 3
