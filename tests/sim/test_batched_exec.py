"""Differential suite: the batched executor vs the scalar oracle.

The batched regime in :mod:`repro.sim.processor` must be **bit
identical** to the retained scalar per-op loop — same
``MachineStats.as_dict`` (floats compared exactly, not approximately),
same per-phase accounting, same final functional memory image.  Every
test here runs the same op stream twice on fresh machines, once per
regime (``Processor.batching_enabled`` flips the escape hatch), and
diffs the snapshots.

Hypothesis generates the streams: straight-line segments of
compute/memory ops interleaved with Activate/WaitPage sync points,
phase markers, inter-page communication (which parks pages on the
blocked queue and forces the executor's scalar fallback mid-run), and
explicit ServicePending polls.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.functions import CommRequest, PageTask, Segment
from repro.radram.config import RADramConfig
from repro.radram.system import RADramMemorySystem
from repro.sim import ops as O
from repro.sim.machine import Machine
from repro.sim.memory import PagedMemory

KB = 1024
PAGE_BYTES = 4 * KB
N_PAGES = 6
#: All generated addresses stay inside this span of the data region.
DATA_SPAN = N_PAGES * PAGE_BYTES - 512


def _radram_machine():
    cfg = RADramConfig.reference().with_page_bytes(PAGE_BYTES)
    machine = Machine(
        memory=PagedMemory(page_bytes=PAGE_BYTES),
        memsys=RADramMemorySystem(cfg),
    )
    region = machine.memory.alloc_pages(N_PAGES, name="data")
    # A recognizable pattern so functional copies show up in the image.
    region.buffer[:] = (np.arange(region.buffer.shape[0]) % 251).astype(np.uint8)
    return machine, region


def _conventional_machine():
    machine = Machine(memory=PagedMemory(page_bytes=PAGE_BYTES))
    region = machine.memory.alloc_pages(N_PAGES, name="data")
    return machine, region


def _snapshot(machine, stats):
    return {
        "stats": stats.as_dict(),
        "phase_ns": dict(stats.phase_ns),
        "total_ns": stats.total_ns,
        "now": machine.processor.now,
        "image": {
            base: region.buffer.tobytes()
            for base, region in machine.memory._regions.items()
        },
    }


def _run_both(ops, machine_factory):
    """Run ``ops`` under each regime on fresh machines; return snapshots."""
    snaps = []
    for batching in (True, False):
        machine, _ = machine_factory()
        machine.processor.batching_enabled = batching
        stats = machine.run(iter(ops))
        snaps.append(_snapshot(machine, stats))
    return snaps


def _assert_identical(batched, scalar):
    # Dict equality compares floats bitwise-for-equality: any fold-order
    # drift in the batched executor shows up here.
    assert batched["stats"] == scalar["stats"]
    assert sorted(batched["phase_ns"]) == sorted(scalar["phase_ns"])
    assert batched["phase_ns"] == scalar["phase_ns"]
    assert batched["total_ns"] == scalar["total_ns"]
    assert batched["now"] == scalar["now"]
    assert batched["image"] == scalar["image"]


# ----------------------------------------------------------------------
# Stream strategies


_addrs = st.integers(min_value=0, max_value=DATA_SPAN)


@st.composite
def _straightline(draw, min_size=0, max_size=12):
    """A run of non-sync ops (compute + memory + balanced phases)."""
    base = 0x100000  # matches PagedMemory's first allocation base
    ops = []
    n = draw(st.integers(min_size, max_size))
    in_phase = None
    for _ in range(n):
        kind = draw(st.integers(0, 7))
        addr = base + draw(_addrs)
        if kind == 0:
            ops.append(O.Compute(draw(st.integers(1, 2000))))
        elif kind == 1:
            ops.append(O.MemRead(addr, draw(st.integers(1, 300))))
        elif kind == 2:
            ops.append(O.MemWrite(addr, draw(st.integers(1, 300))))
        elif kind == 3:
            ops.append(
                O.StridedRead(
                    addr,
                    count=draw(st.integers(1, 12)),
                    stride_bytes=draw(st.integers(4, 160)),
                    elem_bytes=draw(st.sampled_from([1, 4, 8])),
                )
            )
        elif kind == 4:
            ops.append(
                O.StridedWrite(
                    addr,
                    count=draw(st.integers(1, 12)),
                    stride_bytes=draw(st.integers(4, 160)),
                    elem_bytes=draw(st.sampled_from([1, 4, 8])),
                )
            )
        elif kind == 5:
            k = draw(st.integers(1, 10))
            gathered = [base + draw(_addrs) for _ in range(k)]
            cls = O.GatherRead if draw(st.booleans()) else O.ScatterWrite
            ops.append(cls(gathered, elem_bytes=draw(st.sampled_from([4, 8]))))
        elif kind == 6:
            ops.append(O.FlushRange(addr, draw(st.integers(1, 2 * KB))))
        else:
            if in_phase is None:
                in_phase = draw(st.sampled_from(["alpha", "beta", "gamma"]))
                ops.append(O.BeginPhase(in_phase))
            else:
                ops.append(O.EndPhase(in_phase))
                in_phase = None
    if in_phase is not None:
        ops.append(O.EndPhase(in_phase))
    return ops


@st.composite
def _page_task(draw, with_comm):
    cycles = draw(st.floats(10.0, 3000.0))
    if not with_comm:
        return PageTask.simple(cycles)
    base = 0x100000
    src = base + draw(_addrs)
    dst = base + draw(_addrs)
    return PageTask.of(
        [
            Segment(
                cycles,
                CommRequest(
                    nbytes=draw(st.integers(1, 128)),
                    src_vaddr=src,
                    dst_vaddr=dst,
                ),
            ),
            Segment(draw(st.floats(5.0, 500.0))),
        ]
    )


@st.composite
def radram_streams(draw):
    """Rounds of straight-line work + activate/wait sync bursts."""
    region_first_page = 0x100000 // PAGE_BYTES
    ops = []
    rounds = draw(st.integers(1, 3))
    for _ in range(rounds):
        ops += draw(_straightline())
        pages = draw(
            st.lists(
                st.integers(0, N_PAGES - 1),
                unique=True,
                min_size=1,
                max_size=N_PAGES,
            )
        )
        with_comm = draw(st.booleans())
        phase_burst = draw(st.booleans())
        if phase_burst:
            ops.append(O.BeginPhase("activation"))
        for p in pages:
            task = draw(_page_task(with_comm and draw(st.booleans())))
            ops.append(
                O.Activate(region_first_page + p, draw(st.integers(1, 8)), task)
            )
        if phase_burst:
            ops.append(O.EndPhase("activation"))
        if draw(st.booleans()):
            ops.append(O.ServicePending())
        ops += draw(_straightline(max_size=6))
        if phase_burst:
            ops.append(O.BeginPhase("post"))
        for p in pages:
            ops.append(O.WaitPage(region_first_page + p))
        if phase_burst:
            ops.append(O.EndPhase("post"))
    ops += draw(_straightline(max_size=6))
    return ops


# ----------------------------------------------------------------------
# Differential properties


_DIFF_SETTINGS = settings(
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


class TestBatchedMatchesScalar:
    @_DIFF_SETTINGS
    @given(ops=radram_streams())
    def test_radram_streams_bit_identical(self, ops):
        batched, scalar = _run_both(ops, _radram_machine)
        _assert_identical(batched, scalar)

    @_DIFF_SETTINGS
    @given(ops=_straightline(min_size=1, max_size=40))
    def test_conventional_straightline_bit_identical(self, ops):
        batched, scalar = _run_both(ops, _conventional_machine)
        _assert_identical(batched, scalar)

    @_DIFF_SETTINGS
    @given(ops=radram_streams())
    def test_batched_regime_actually_engages(self, ops):
        """Guard against a vacuous pass: the gate must pick the batched
        path for the default machine and the scalar loop for the
        pinned one."""
        from repro.sim.processor import Processor

        calls = []
        orig = Processor._run_batched

        def spy(self, stream):
            calls.append(True)
            return orig(self, stream)

        Processor._run_batched = spy
        try:
            machine, _ = _radram_machine()
            machine.run(iter(list(ops)))
            assert calls, "batched executor never engaged"
            calls.clear()
            machine, _ = _radram_machine()
            machine.processor.batching_enabled = False
            machine.run(iter(list(ops)))
            assert not calls, "escape hatch did not pin the scalar loop"
        finally:
            Processor._run_batched = orig


class TestRegimeFlip:
    """Streams engineered to bounce between batched and scalar."""

    def _comm_task(self):
        base = 0x100000
        return PageTask.of(
            [
                Segment(50.0, CommRequest(nbytes=64, src_vaddr=base, dst_vaddr=base + 8 * KB)),
                Segment(25.0),
            ]
        )

    def test_blocked_pages_force_scalar_fallback_and_recover(self):
        """Comm tasks park pages on the blocked queue: the executor
        must drop to the per-op scalar loop while service is pending,
        then resume fusing — with identical accounting throughout."""
        first = 0x100000 // PAGE_BYTES
        ops = []
        for r in range(4):
            for p in range(3):
                ops.append(O.Activate(first + p, 2, self._comm_task()))
            # Straight-line work while pages sit blocked: the batched
            # regime may not skip the polls that service them.
            for i in range(20):
                ops.append(O.MemRead(0x100000 + (i * 192) % DATA_SPAN, 128))
                ops.append(O.Compute(64))
            for p in range(3):
                ops.append(O.WaitPage(first + p))
        batched, scalar = _run_both(ops, _radram_machine)
        _assert_identical(batched, scalar)
        assert batched["stats"]["interrupts"] > 0

    @_DIFF_SETTINGS
    @given(flips=st.lists(st.booleans(), min_size=2, max_size=5))
    def test_mid_sequence_regime_flips(self, flips):
        """Alternate regimes across successive runs of one machine:
        cache and page state carried between runs must not diverge."""
        first = 0x100000 // PAGE_BYTES

        def chunk(i):
            ops = [O.MemWrite(0x100000 + (i * 640) % DATA_SPAN, 256)]
            ops.append(O.Activate(first + (i % N_PAGES), 1, PageTask.simple(100.0)))
            ops.append(O.Compute(32))
            ops.append(O.WaitPage(first + (i % N_PAGES)))
            return ops

        machines = [_radram_machine()[0], _radram_machine()[0]]
        machines[1].processor.batching_enabled = False
        flipper = machines[0].processor
        for i, flip in enumerate(flips):
            flipper.batching_enabled = flip
            for m in machines:
                m.run(iter(chunk(i)))
        a = _snapshot(machines[0], machines[0].processor.stats)
        b = _snapshot(machines[1], machines[1].processor.stats)
        _assert_identical(a, b)


class TestInstrumentedFallback:
    """Tracer or sanitizer enabled => the scalar oracle must run."""

    def _ops(self):
        first = 0x100000 // PAGE_BYTES
        ops = [O.MemRead(0x100000, 512), O.Compute(100)]
        ops.append(O.Activate(first, 2, PageTask.simple(200.0)))
        ops.append(O.WaitPage(first))
        return ops

    def test_traced_run_uses_scalar_loop(self):
        from repro.sim.processor import Processor
        from repro.trace import events as trace_events

        calls = []
        orig = Processor._run_batched
        Processor._run_batched = lambda self, stream: calls.append(True) or orig(
            self, stream
        )
        try:
            machine, _ = _radram_machine()
            with trace_events.tracing():
                machine.run(iter(self._ops()))
            assert not calls, "batched executor ran under a live tracer"
        finally:
            Processor._run_batched = orig

    def test_checked_run_uses_scalar_loop(self):
        from repro.check import runtime as check_runtime
        from repro.sim.processor import Processor

        calls = []
        orig = Processor._run_batched
        Processor._run_batched = lambda self, stream: calls.append(True) or orig(
            self, stream
        )
        try:
            machine, _ = _radram_machine()
            with check_runtime.checking():
                machine.run(iter(self._ops()))
            assert not calls, "batched executor ran under a live checker"
        finally:
            Processor._run_batched = orig

    def test_traced_and_plain_runs_agree(self):
        """The instrumented scalar fallback still produces the same
        numbers as the batched run (tracing only observes)."""
        from repro.trace import events as trace_events

        machine, _ = _radram_machine()
        stats = machine.run(iter(self._ops()))
        plain = _snapshot(machine, stats)

        machine, _ = _radram_machine()
        with trace_events.tracing():
            stats = machine.run(iter(self._ops()))
        traced = _snapshot(machine, stats)
        _assert_identical(traced, plain)


class TestPaperApps:
    """The six paper applications, both memory systems, bit-identical."""

    @pytest.mark.parametrize("system", ["conventional", "radram"])
    def test_apps_bit_identical(self, system):
        from repro.apps import ALL_APPS
        from repro.experiments.runner import run_conventional, run_radram
        from repro.sim import processor as processor_mod

        runner = run_conventional if system == "conventional" else run_radram
        orig_init = processor_mod.Processor.__init__
        for name in sorted(ALL_APPS):
            app = ALL_APPS[name]
            res_batched = runner(app, n_pages=2, seed=3)

            def scalar_init(self, *a, **kw):
                orig_init(self, *a, **kw)
                self.batching_enabled = False

            processor_mod.Processor.__init__ = scalar_init
            try:
                res_scalar = runner(app, n_pages=2, seed=3)
            finally:
                processor_mod.Processor.__init__ = orig_init

            assert res_batched.stats.as_dict() == res_scalar.stats.as_dict(), name
            assert res_batched.stats.phase_ns == res_scalar.stats.phase_ns, name
            assert res_batched.total_ns == res_scalar.total_ns, name
