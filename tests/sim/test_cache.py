"""Unit + property tests for the cache hierarchy."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.bus import Bus
from repro.sim.cache import Cache, build_hierarchy
from repro.sim.config import KB, BusConfig, CacheConfig, DRAMConfig
from repro.sim.dram import DRAM


def make_dram(miss_ns=50.0):
    return DRAM(DRAMConfig(miss_latency_ns=miss_ns), Bus(BusConfig()))


def small_cache(size=1024, assoc=2, line=32, hit=1.0, dram=None):
    dram = dram or make_dram()
    return Cache("L1", CacheConfig(size_bytes=size, assoc=assoc, line_bytes=line, hit_ns=hit), dram=dram)


class TestBasicBehaviour:
    def test_first_access_misses_second_hits(self):
        c = small_cache()
        t1 = c.access_line(0, write=False)
        t2 = c.access_line(0, write=False)
        assert c.stats.misses == 1
        assert c.stats.hits == 1
        assert t1 > t2
        assert t2 == 1.0  # pure hit latency

    def test_miss_pays_dram_latency_plus_bus(self):
        c = small_cache()
        t = c.access_line(7, write=False)
        # hit_ns + miss latency + line transfer (32 B over 4 B/10 ns bus)
        assert t == pytest.approx(1.0 + 50.0 + 80.0)

    def test_distinct_sets_do_not_conflict(self):
        c = small_cache(size=1024, assoc=1)  # 32 sets
        n_sets = c.config.n_sets
        c.access_line(0, write=False)
        c.access_line(1, write=False)
        assert c.contains(0) and c.contains(1)
        # Same set, different tag evicts in a direct-mapped cache.
        c.access_line(n_sets, write=False)
        assert not c.contains(0)

    def test_lru_evicts_least_recent(self):
        c = small_cache(size=64, assoc=2, line=32)  # 1 set, 2 ways
        c.access_line(0, write=False)
        c.access_line(1, write=False)
        c.access_line(0, write=False)  # 0 becomes MRU
        c.access_line(2, write=False)  # evicts 1
        assert c.contains(0)
        assert not c.contains(1)
        assert c.contains(2)

    def test_dirty_eviction_counts_writeback(self):
        c = small_cache(size=64, assoc=1, line=32)  # 2 sets, 1 way
        c.access_line(0, write=True)
        c.access_line(2, write=False)  # same set 0, evicts dirty line 0
        assert c.stats.writebacks == 1

    def test_clean_eviction_has_no_writeback(self):
        c = small_cache(size=64, assoc=1, line=32)
        c.access_line(0, write=False)
        c.access_line(2, write=False)
        assert c.stats.writebacks == 0

    def test_write_hit_marks_dirty(self):
        c = small_cache(size=64, assoc=1, line=32)
        c.access_line(0, write=False)
        c.access_line(0, write=True)
        c.access_line(2, write=False)
        assert c.stats.writebacks == 1

    def test_invalidate_all_empties_cache(self):
        c = small_cache()
        for i in range(10):
            c.access_line(i, write=False)
        c.invalidate_all()
        assert c.resident_lines() == 0

    def test_requires_backing(self):
        with pytest.raises(ValueError):
            Cache("x", CacheConfig(size_bytes=64, assoc=1))


class TestHierarchy:
    def test_l2_absorbs_l1_capacity_misses(self):
        dram = make_dram()
        l1d, _, l2 = build_hierarchy(
            CacheConfig(size_bytes=64, assoc=1, line_bytes=32, hit_ns=1.0),
            CacheConfig(size_bytes=1024, assoc=4, line_bytes=32, hit_ns=6.0),
            dram,
        )
        # Touch 4 lines: all L1 capacity evictions land in L2.
        for i in range(4):
            l1d.access_line(i, write=False)
        dram_reads_before = dram.reads
        for i in range(4):
            l1d.access_line(i, write=False)
        # Second pass misses L1 (2 sets x 1 way) but hits L2: no DRAM.
        assert dram.reads == dram_reads_before

    def test_l2_hit_is_cheaper_than_dram(self):
        dram = make_dram()
        l1d, _, l2 = build_hierarchy(
            CacheConfig(size_bytes=64, assoc=1, line_bytes=32, hit_ns=1.0),
            CacheConfig(size_bytes=1024, assoc=4, line_bytes=32, hit_ns=6.0),
            dram,
        )
        t_cold = l1d.access_line(0, write=False)
        l1d.access_line(2, write=False)  # evict line 0 from L1 set 0
        t_l2 = l1d.access_line(0, write=False)
        assert t_l2 == pytest.approx(1.0 + 6.0)
        assert t_l2 < t_cold

    def test_posted_writeback_installs_victim_in_l2(self):
        """Regression: a dirty L1 victim must land (dirty) in L2.

        The seed model charged the L2 hit time for the posted victim
        but never installed it, so dirty data silently vanished from
        L2 occupancy — a later read of the victim paid a full DRAM
        trip even though the writeback supposedly went to L2.
        """
        dram = make_dram()
        l1d, _, l2 = build_hierarchy(
            CacheConfig(size_bytes=64, assoc=1, line_bytes=32, hit_ns=1.0),
            CacheConfig(size_bytes=1024, assoc=4, line_bytes=32, hit_ns=6.0),
            dram,
        )
        l1d.access_line(0, write=True)  # dirty line 0 in L1 set 0
        l1d.access_line(2, write=False)  # conflict: evicts dirty line 0
        assert l1d.stats.writebacks == 1
        assert l2.contains(0), "posted victim must be installed in L2"
        assert l2.lru_contents(0)[0] == (0, True), "victim installed dirty, MRU"
        # Re-reading the victim now hits L2 — no DRAM round trip.
        dram_reads_before = dram.reads
        t = l1d.access_line(0, write=False)
        assert dram.reads == dram_reads_before
        assert t == pytest.approx(1.0 + 6.0)

    def test_installed_victim_eviction_counts_as_l2_writeback(self):
        """A line that is dirty in L2 *only because it was installed*
        still writes back to DRAM when evicted — the posted data is
        architecturally real, not just a latency charge."""
        dram = make_dram()
        l1d, _, l2 = build_hierarchy(
            CacheConfig(size_bytes=32, assoc=1, line_bytes=32, hit_ns=1.0),
            CacheConfig(size_bytes=32, assoc=1, line_bytes=32, hit_ns=6.0),
            dram,
        )
        l1d.access_line(0, write=True)
        l1d.access_line(1, write=True)  # evicts dirty 0 -> installs in L2
        dram_writes_before = dram.writes
        l1d.access_line(2, write=False)  # evicts dirty 1 -> L2 evicts dirty 0
        assert l2.stats.writebacks == 1
        assert dram.writes == dram_writes_before + 1

    def test_larger_cache_never_increases_misses_on_a_scan(self):
        def misses(size):
            dram = make_dram()
            c = small_cache(size=size, assoc=2, dram=dram)
            for _ in range(3):
                for i in range(64):
                    c.access_line(i, write=False)
            return c.stats.misses

        assert misses(4 * KB) <= misses(1 * KB)


class TestProperties:
    @given(
        addrs=st.lists(st.integers(min_value=0, max_value=255), min_size=1, max_size=200),
    )
    @settings(max_examples=50, deadline=None)
    def test_hits_plus_misses_equals_accesses(self, addrs):
        c = small_cache()
        for a in addrs:
            c.access_line(a, write=False)
        assert c.stats.hits + c.stats.misses == len(addrs)

    @given(
        addrs=st.lists(st.integers(min_value=0, max_value=63), min_size=1, max_size=100),
    )
    @settings(max_examples=50, deadline=None)
    def test_residency_never_exceeds_capacity(self, addrs):
        c = small_cache(size=256, assoc=2, line=32)  # 8 lines capacity
        for a in addrs:
            c.access_line(a, write=bool(a % 2))
        assert c.resident_lines() <= 8

    @given(
        addrs=st.lists(st.integers(min_value=0, max_value=31), min_size=1, max_size=100),
    )
    @settings(max_examples=50, deadline=None)
    def test_repeat_of_recent_line_always_hits(self, addrs):
        c = small_cache(size=1024, assoc=2)
        for a in addrs:
            c.access_line(a, write=False)
            hits_before = c.stats.hits
            c.access_line(a, write=False)
            assert c.stats.hits == hits_before + 1

    @given(
        addrs=st.lists(st.integers(min_value=0, max_value=1023), min_size=1, max_size=150),
        write_frac=st.integers(min_value=0, max_value=3),
    )
    @settings(max_examples=30, deadline=None)
    def test_total_latency_is_sum_of_line_latencies(self, addrs, write_frac):
        c1 = small_cache()
        c2 = small_cache()
        writes = [bool(i % 4 < write_frac) for i in range(len(addrs))]
        total = 0.0
        for a, w in zip(addrs, writes):
            total += c1.access_line(a, w)
        bulk = 0.0
        for a, w in zip(addrs, writes):
            bulk += c2.access_line(a, w)
        assert total == pytest.approx(bulk)
