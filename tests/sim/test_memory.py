"""Unit + property tests for the functional paged memory."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.errors import AddressError
from repro.sim.memory import PagedMemory


class TestAllocation:
    def test_allocations_are_page_aligned(self):
        mem = PagedMemory(page_bytes=4096)
        r1 = mem.alloc(100)
        r2 = mem.alloc(5000)
        assert r1.base % 4096 == 0
        assert r2.base % 4096 == 0
        assert r2.base >= r1.base + 4096

    def test_alloc_rounds_to_whole_pages(self):
        mem = PagedMemory(page_bytes=4096)
        r = mem.alloc(5000)
        assert len(r.buffer) == 8192
        assert len(list(mem.pages_of(r))) == 2

    def test_alloc_pages_exact(self):
        mem = PagedMemory(page_bytes=4096)
        r = mem.alloc_pages(3)
        assert len(r.buffer) == 3 * 4096

    def test_rejects_nonpositive_alloc(self):
        mem = PagedMemory(page_bytes=4096)
        with pytest.raises(AddressError):
            mem.alloc(0)

    def test_freed_pages_unmapped(self):
        mem = PagedMemory(page_bytes=4096)
        r = mem.alloc_pages(2)
        base = r.base
        mem.free(r)
        with pytest.raises(AddressError):
            mem.region_of(base)


class TestAddressing:
    def test_region_of_interior_address(self):
        mem = PagedMemory(page_bytes=4096)
        r = mem.alloc_pages(2)
        assert mem.region_of(r.base + 5000) is r

    def test_unmapped_address_raises(self):
        mem = PagedMemory(page_bytes=4096)
        with pytest.raises(AddressError):
            mem.region_of(0x42)

    def test_page_view_sees_region_bytes(self):
        mem = PagedMemory(page_bytes=4096)
        r = mem.alloc_pages(2)
        words = r.view(np.uint32)
        words[:] = np.arange(len(words), dtype=np.uint32)
        pages = list(mem.pages_of(r))
        page1 = mem.page_view(pages[1], dtype=np.uint32)
        assert page1[0] == 4096 // 4

    def test_page_view_is_a_view_not_copy(self):
        mem = PagedMemory(page_bytes=4096)
        r = mem.alloc_pages(1)
        page = mem.page_view(next(iter(mem.pages_of(r))))
        page[0] = 0xAB
        assert r.buffer[0] == 0xAB


class TestReadWrite:
    def test_roundtrip(self):
        mem = PagedMemory(page_bytes=4096)
        r = mem.alloc(100)
        data = np.arange(50, dtype=np.uint8)
        mem.write(r.base + 10, data)
        assert np.array_equal(mem.read(r.base + 10, 50), data)

    def test_copy_between_regions(self):
        mem = PagedMemory(page_bytes=4096)
        a = mem.alloc(100)
        b = mem.alloc(100)
        mem.write(a.base, np.full(64, 7, dtype=np.uint8))
        mem.copy(a.base, b.base + 8, 64)
        assert np.array_equal(mem.read(b.base + 8, 64), np.full(64, 7, dtype=np.uint8))

    def test_write_past_region_raises(self):
        mem = PagedMemory(page_bytes=4096)
        r = mem.alloc(4096)
        with pytest.raises(AddressError):
            mem.write(r.base + 4090, np.zeros(10, dtype=np.uint8))

    def test_typed_view_bounds_checked(self):
        mem = PagedMemory(page_bytes=4096)
        r = mem.alloc(64)
        with pytest.raises(AddressError):
            r.view(np.uint32, offset=0, count=4096)


class TestProperties:
    @given(
        sizes=st.lists(st.integers(min_value=1, max_value=10000), min_size=1, max_size=20),
    )
    @settings(max_examples=50, deadline=None)
    def test_regions_never_overlap(self, sizes):
        mem = PagedMemory(page_bytes=4096)
        regions = [mem.alloc(s) for s in sizes]
        spans = sorted((r.base, r.end) for r in regions)
        for (_, end_a), (start_b, _) in zip(spans, spans[1:]):
            assert end_a <= start_b

    @given(
        offset=st.integers(min_value=0, max_value=4000),
        payload=st.binary(min_size=1, max_size=96),
    )
    @settings(max_examples=50, deadline=None)
    def test_write_read_roundtrip_anywhere(self, offset, payload):
        mem = PagedMemory(page_bytes=4096)
        r = mem.alloc_pages(1)
        data = np.frombuffer(payload, dtype=np.uint8)
        mem.write(r.base + offset, data)
        assert np.array_equal(mem.read(r.base + offset, len(data)), data)

    @given(n_pages=st.integers(min_value=1, max_value=16))
    @settings(max_examples=20, deadline=None)
    def test_page_views_tile_region_exactly(self, n_pages):
        mem = PagedMemory(page_bytes=1024)
        r = mem.alloc_pages(n_pages)
        r.buffer[:] = np.random.default_rng(0).integers(0, 256, len(r.buffer), dtype=np.uint8)
        rebuilt = np.concatenate([mem.page_view(p) for p in mem.pages_of(r)])
        assert np.array_equal(rebuilt, r.buffer)
