"""Unit tests for bus occupancy and DRAM timing."""

import pytest

from repro.sim.bus import Bus
from repro.sim.config import BusConfig, DRAMConfig
from repro.sim.dram import DRAM


class TestBus:
    def test_accumulates_bytes_and_busy_time(self):
        bus = Bus(BusConfig())
        bus.transfer(32)
        bus.transfer(4)
        assert bus.bytes_transferred == 36
        assert bus.busy_ns == 80.0 + 10.0
        assert bus.transfers == 2

    def test_zero_transfer_is_free_and_uncounted(self):
        bus = Bus(BusConfig())
        assert bus.transfer(0) == 0.0
        assert bus.transfers == 0

    def test_reset_clears_counters(self):
        bus = Bus(BusConfig())
        bus.transfer(100)
        bus.reset()
        assert bus.bytes_transferred == 0
        assert bus.busy_ns == 0.0


class TestDRAM:
    def test_read_line_pays_latency_plus_bus(self):
        dram = DRAM(DRAMConfig(miss_latency_ns=50), Bus(BusConfig()))
        assert dram.read_line(32) == pytest.approx(50.0 + 80.0)
        assert dram.reads == 1

    def test_writeback_is_posted(self):
        dram = DRAM(DRAMConfig(miss_latency_ns=50), Bus(BusConfig()))
        assert dram.write_line(32) == pytest.approx(80.0)

    def test_uncached_write_pays_full_latency(self):
        dram = DRAM(DRAMConfig(miss_latency_ns=50), Bus(BusConfig()))
        assert dram.uncached_write(4) == pytest.approx(50.0 + 10.0)

    def test_zero_miss_latency_supported(self):
        # Figure 8 sweeps the miss penalty down to 0 ns.
        dram = DRAM(DRAMConfig(miss_latency_ns=0), Bus(BusConfig()))
        assert dram.read_line(32) == pytest.approx(80.0)

    def test_reset_clears_counters(self):
        dram = DRAM(DRAMConfig(), Bus(BusConfig()))
        dram.read_line(32)
        dram.reset()
        assert dram.reads == 0 and dram.writes == 0
