"""Tests for MachineStats: charging, phases, and the flat summary."""

import pytest

from repro.sim.stats import CHARGE_CATEGORIES, MachineStats


class TestCharge:
    def test_accumulates_by_category(self):
        stats = MachineStats()
        stats.charge("compute_ns", 10.0)
        stats.charge("compute_ns", 5.0)
        stats.charge("wait_ns", 2.0)
        assert stats.compute_ns == 15.0
        assert stats.wait_ns == 2.0

    def test_unknown_category_raises_clear_value_error(self):
        stats = MachineStats()
        with pytest.raises(ValueError, match="unknown stats category"):
            stats.charge("bogus_ns", 1.0)
        # The message names the accepted categories.
        with pytest.raises(ValueError, match="compute_ns"):
            stats.charge("bogus_ns", 1.0)

    def test_non_numeric_category_target_raises_value_error(self):
        # Charging into a non-float field (e.g. the phase dict) must not
        # surface as an opaque TypeError/KeyError from the fast path.
        stats = MachineStats()
        with pytest.raises(ValueError):
            stats.charge("phase_ns", 1.0)

    def test_all_declared_categories_chargeable(self):
        stats = MachineStats()
        for category in CHARGE_CATEGORIES:
            stats.charge(category, 1.0)


class TestPhaseContextManager:
    def test_charges_inside_block_land_in_phase(self):
        stats = MachineStats()
        with stats.phase("post"):
            stats.charge("compute_ns", 7.0)
        stats.charge("compute_ns", 3.0)  # outside: not phase-attributed
        assert stats.phase_ns["post"] == 7.0
        assert stats.phase_counts["post"] == 1
        assert not stats._phase_stack

    def test_stack_unwound_on_exception(self):
        stats = MachineStats()
        with pytest.raises(RuntimeError):
            with stats.phase("post"):
                stats.charge("compute_ns", 1.0)
                raise RuntimeError("body failed")
        assert not stats._phase_stack
        # A later charge must not be attributed to the dead phase.
        stats.charge("compute_ns", 5.0)
        assert stats.phase_ns["post"] == 1.0

    def test_leaked_nested_phases_are_unwound(self):
        stats = MachineStats()
        with stats.phase("outer"):
            stats.begin_phase("inner")  # leaked: never ended
        assert not stats._phase_stack

    def test_nested_phases_attribute_to_innermost(self):
        stats = MachineStats()
        with stats.phase("outer"):
            stats.charge("compute_ns", 1.0)
            with stats.phase("inner"):
                stats.charge("compute_ns", 2.0)
        assert stats.phase_ns["inner"] == 2.0
        assert stats.phase_ns["outer"] == 1.0

    def test_wait_time_tracked_separately(self):
        stats = MachineStats()
        with stats.phase("post"):
            stats.charge("compute_ns", 4.0)
            stats.charge("wait_ns", 6.0)
        assert stats.phase_ns["post"] == 10.0
        assert stats.phase_wait_ns["post"] == 6.0
        assert stats.phase_mean_ns("post") == 10.0
        assert stats.phase_mean_ns("post", exclude_wait=True) == 4.0

    def test_end_phase_rejects_mismatched_name(self):
        stats = MachineStats()
        stats.begin_phase("a")
        with pytest.raises(ValueError):
            stats.end_phase("b")


class TestAsDict:
    def test_includes_category_totals(self):
        stats = MachineStats()
        stats.charge("compute_ns", 10.0)
        stats.total_ns = 20.0
        d = stats.as_dict()
        assert d["compute_ns"] == 10.0
        assert d["total_ns"] == 20.0
        assert d["stall_fraction"] == 0.0

    def test_includes_per_phase_totals_and_counts(self):
        stats = MachineStats()
        with stats.phase("activation"):
            stats.charge("activation_ns", 3.0)
        with stats.phase("activation"):
            stats.charge("activation_ns", 5.0)
        with stats.phase("post"):
            stats.charge("compute_ns", 2.0)
        d = stats.as_dict()
        assert d["phase.activation_ns"] == 8.0
        assert d["phase.activation_count"] == 2.0
        assert d["phase.post_ns"] == 2.0
        assert d["phase.post_count"] == 1.0

    def test_no_phases_means_no_phase_keys(self):
        d = MachineStats().as_dict()
        assert not [k for k in d if k.startswith("phase.")]
