"""Unit + property tests for line-address expansion of memory ops."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.ops import lines_for_block, lines_for_gather, lines_for_stride


class TestBlockExpansion:
    def test_block_within_one_line(self):
        assert list(lines_for_block(0, 16, 32)) == [0]

    def test_block_spanning_lines(self):
        assert list(lines_for_block(16, 32, 32)) == [0, 1]

    def test_exact_line_multiple(self):
        assert list(lines_for_block(32, 64, 32)) == [1, 2]

    def test_empty_block(self):
        assert list(lines_for_block(0, 0, 32)) == []


class TestStrideExpansion:
    def test_unit_stride_collapses_within_line(self):
        lines = lines_for_stride(0, count=8, stride_bytes=4, elem_bytes=4, line_bytes=32)
        assert list(lines) == [0]

    def test_large_stride_touches_every_line(self):
        lines = lines_for_stride(0, count=4, stride_bytes=512, elem_bytes=4, line_bytes=32)
        assert list(lines) == [0, 16, 32, 48]

    def test_element_straddles_line_boundary(self):
        lines = lines_for_stride(30, count=1, stride_bytes=64, elem_bytes=4, line_bytes=32)
        assert list(lines) == [0, 1]

    def test_zero_count(self):
        assert len(lines_for_stride(0, 0, 4, 4, 32)) == 0

    def test_element_larger_than_line(self):
        lines = lines_for_stride(0, count=2, stride_bytes=128, elem_bytes=64, line_bytes=32)
        assert list(lines) == [0, 1, 4, 5]

    def test_wide_element_unaligned_start(self):
        # Element [40, 136) spans lines 1-4; next at 168 spans 5-8.
        lines = lines_for_stride(40, count=2, stride_bytes=128, elem_bytes=96, line_bytes=32)
        assert list(lines) == [1, 2, 3, 4, 5, 6, 7, 8]

    def test_wide_element_overlapping_stride_collapses_duplicates(self):
        # Stride < element width: consecutive elements share lines, and
        # only *consecutive* duplicates collapse (LRU-exact ordering).
        lines = lines_for_stride(0, count=3, stride_bytes=32, elem_bytes=64, line_bytes=32)
        assert list(lines) == [0, 1, 2, 3]

    def test_wide_element_matches_per_element_blocks(self):
        # The segmented expansion equals the naive per-element loop.
        for addr, count, stride, elem in [
            (0, 5, 100, 70),
            (17, 4, 96, 64),
            (3, 7, 33, 65),
            (1000, 3, 260, 130),
        ]:
            got = list(lines_for_stride(addr, count, stride, elem, 32))
            want = []
            for i in range(count):
                s = addr + i * stride
                for line in range((s) // 32, (s + elem - 1) // 32 + 1):
                    if not want or want[-1] != line:
                        want.append(line)
            assert got == want, (addr, count, stride, elem)


class TestGatherExpansion:
    def test_duplicate_consecutive_addresses_collapse(self):
        lines = lines_for_gather([0, 4, 8, 100], elem_bytes=4, line_bytes=32)
        assert list(lines) == [0, 3]

    def test_order_preserved(self):
        lines = lines_for_gather([100, 0, 200], elem_bytes=4, line_bytes=32)
        assert list(lines) == [3, 0, 6]

    def test_empty_gather(self):
        assert len(lines_for_gather([], 4, 32)) == 0


class TestExpansionProperties:
    @given(
        addr=st.integers(min_value=0, max_value=10000),
        count=st.integers(min_value=0, max_value=200),
        stride=st.integers(min_value=1, max_value=256),
        elem=st.sampled_from([1, 2, 4, 8]),
    )
    @settings(max_examples=100, deadline=None)
    def test_stride_matches_naive_gather(self, addr, count, stride, elem):
        """Strided expansion equals gather over the same addresses."""
        addrs = [addr + i * stride for i in range(count)]
        a = lines_for_stride(addr, count, stride, elem, 32)
        b = lines_for_gather(addrs, elem, 32)
        assert np.array_equal(a, b)

    @given(
        addr=st.integers(min_value=0, max_value=10000),
        nbytes=st.integers(min_value=1, max_value=4096),
    )
    @settings(max_examples=100, deadline=None)
    def test_block_covers_all_bytes(self, addr, nbytes):
        lines = set(lines_for_block(addr, nbytes, 32))
        for byte in (addr, addr + nbytes - 1, addr + nbytes // 2):
            assert byte // 32 in lines

    @given(
        addrs=st.lists(st.integers(min_value=0, max_value=100000), max_size=100),
    )
    @settings(max_examples=50, deadline=None)
    def test_gather_has_no_consecutive_duplicates(self, addrs):
        lines = lines_for_gather(addrs, 4, 32)
        assert all(lines[i] != lines[i + 1] for i in range(len(lines) - 1))
