"""Differential suite: vectorized engine vs the scalar reference model.

:mod:`repro.sim.cache` resolves whole line streams with array passes;
:mod:`repro.sim.cache_reference` replays the same streams one line at a
time with list-based LRU.  Hypothesis drives both hierarchies with
random mixes of block / stride / gather streams and write/read
interleavings over small, conflict-heavy geometries and demands
**bit-identical** results: hits, misses, writebacks at every level,
DRAM traffic, total latency (exact float equality, not approx), and
full per-set residency/recency/dirty state.
"""

from typing import List

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.bus import Bus
from repro.sim.cache import build_hierarchy
from repro.sim.cache_reference import build_scalar_hierarchy
from repro.sim.config import BusConfig, CacheConfig, DRAMConfig
from repro.sim.dram import DRAM
from repro.sim.ops import lines_for_block, lines_for_gather, lines_for_stride

LINE = 32


def make_pair(l1_sets, l1_assoc, l2_sets, l2_assoc, small_batch=0):
    """A (vectorized, scalar) hierarchy pair with identical geometry.

    ``small_batch=0`` pins the vectorized engine to its array paths so
    the suite actually exercises them on the small streams hypothesis
    generates; pass ``None`` to keep the production adaptive dispatch.
    """
    l1_cfg = CacheConfig(
        size_bytes=l1_sets * l1_assoc * LINE, assoc=l1_assoc, line_bytes=LINE, hit_ns=1.0
    )
    l2_cfg = CacheConfig(
        size_bytes=l2_sets * l2_assoc * LINE, assoc=l2_assoc, line_bytes=LINE, hit_ns=6.0
    )
    dram_v = DRAM(DRAMConfig(), Bus(BusConfig()))
    dram_s = DRAM(DRAMConfig(), Bus(BusConfig()))
    vec = build_hierarchy(l1_cfg, l2_cfg, dram_v)
    ref = build_scalar_hierarchy(l1_cfg, l2_cfg, dram_s)
    if small_batch is not None:
        for c in (vec[0], vec[2]):
            c._SMALL_BATCH = small_batch
    return vec, ref, dram_v, dram_s


def assert_identical(vec, ref, dram_v, dram_s, ctx=""):
    """Full-state equality: stats, DRAM traffic, per-set LRU order."""
    for vc, sc in zip((vec[0], vec[2]), (ref[0], ref[2])):
        assert vc.stats.hits == sc.stats.hits, f"{vc.name} hits {ctx}"
        assert vc.stats.misses == sc.stats.misses, f"{vc.name} misses {ctx}"
        assert vc.stats.writebacks == sc.stats.writebacks, f"{vc.name} wb {ctx}"
        assert vc.resident_lines() == sc.resident_lines(), f"{vc.name} occ {ctx}"
        for s in range(vc.config.n_sets):
            assert vc.lru_contents(s) == sc.lru_contents(s), (
                f"{vc.name} set {s} {ctx}"
            )
    assert dram_v.reads == dram_s.reads, f"dram reads {ctx}"
    assert dram_v.writes == dram_s.writes, f"dram writes {ctx}"


# ----------------------------------------------------------------------
# Stream strategies: the shapes the op layer actually produces


@st.composite
def block_stream(draw):
    addr = draw(st.integers(min_value=0, max_value=2048))
    nbytes = draw(st.integers(min_value=1, max_value=2048))
    return list(lines_for_block(addr, nbytes, LINE))


@st.composite
def stride_stream(draw):
    addr = draw(st.integers(min_value=0, max_value=1024))
    count = draw(st.integers(min_value=1, max_value=40))
    stride = draw(st.integers(min_value=1, max_value=160))
    elem = draw(st.sampled_from([1, 4, 8, 32, 64, 96]))
    return list(lines_for_stride(addr, count, stride, elem, LINE))


@st.composite
def gather_stream(draw):
    addrs = draw(
        st.lists(st.integers(min_value=0, max_value=2048), min_size=1, max_size=40)
    )
    elem = draw(st.sampled_from([1, 4, 8]))
    return list(lines_for_gather(addrs, elem, LINE))


@st.composite
def raw_stream(draw):
    """Arbitrary line addresses — repeats, reversals, conflicts."""
    return draw(
        st.lists(st.integers(min_value=0, max_value=63), min_size=1, max_size=60)
    )


workload = st.lists(
    st.tuples(
        st.one_of(block_stream(), stride_stream(), gather_stream(), raw_stream()),
        st.booleans(),  # write?
    ),
    min_size=1,
    max_size=12,
)

geometry = st.tuples(
    st.sampled_from([1, 2, 4, 8]),  # l1 sets
    st.sampled_from([1, 2, 4, 8]),  # l1 assoc
    st.sampled_from([2, 4, 16]),  # l2 sets
    st.sampled_from([1, 2, 4, 8]),  # l2 assoc
)


class TestBatchedDifferential:
    @given(geom=geometry, streams=workload)
    @settings(max_examples=120, deadline=None)
    def test_bit_identical_streams(self, geom, streams):
        vec, ref, dram_v, dram_s = make_pair(*geom)
        for i, (lines, write) in enumerate(streams):
            lat_v = vec[0].access_lines(lines, write=write)
            lat_s = ref[0].access_lines(lines, write=write)
            assert lat_v == lat_s, f"latency, stream {i} ({lines[:8]}...)"
            assert_identical(vec, ref, dram_v, dram_s, ctx=f"stream {i}")

    @given(geom=geometry, streams=workload, data=st.data())
    @settings(max_examples=60, deadline=None)
    def test_bit_identical_with_scalar_interleaving(self, geom, streams, data):
        """Batched and single-line entry points share one state machine."""
        vec, ref, dram_v, dram_s = make_pair(*geom)
        for i, (lines, write) in enumerate(streams):
            if data.draw(st.booleans(), label=f"scalar[{i}]"):
                lat_v = sum(vec[0].access_line(int(l), write) for l in lines)
                lat_s = sum(ref[0].access_line(int(l), write) for l in lines)
            else:
                lat_v = vec[0].access_lines(lines, write=write)
                lat_s = ref[0].access_lines(lines, write=write)
            assert lat_v == lat_s, f"latency, stream {i}"
            assert_identical(vec, ref, dram_v, dram_s, ctx=f"stream {i}")

    @given(
        geom=geometry,
        streams=st.lists(
            st.tuples(raw_stream(), st.booleans(), st.booleans()),
            min_size=1,
            max_size=10,
        ),
    )
    @settings(max_examples=60, deadline=None)
    def test_shared_l2_two_l1s(self, geom, streams):
        """Dual L1s (D+I) interleaving traffic into one L2 — the SMP shape."""
        l1_sets, l1_assoc, l2_sets, l2_assoc = geom
        l1_cfg = CacheConfig(
            size_bytes=l1_sets * l1_assoc * LINE,
            assoc=l1_assoc,
            line_bytes=LINE,
            hit_ns=1.0,
        )
        l2_cfg = CacheConfig(
            size_bytes=l2_sets * l2_assoc * LINE,
            assoc=l2_assoc,
            line_bytes=LINE,
            hit_ns=6.0,
        )
        dram_v = DRAM(DRAMConfig(), Bus(BusConfig()))
        dram_s = DRAM(DRAMConfig(), Bus(BusConfig()))
        vec = build_hierarchy(l1_cfg, l2_cfg, dram_v, l1i_cfg=l1_cfg)
        ref = build_scalar_hierarchy(l1_cfg, l2_cfg, dram_s, l1i_cfg=l1_cfg)
        for c in vec:
            c._SMALL_BATCH = 0
        for i, (lines, write, use_l1i) in enumerate(streams):
            vc = vec[1] if use_l1i else vec[0]
            sc = ref[1] if use_l1i else ref[0]
            assert vc.access_lines(lines, write=write) == sc.access_lines(
                lines, write=write
            ), f"latency, stream {i}"
            for a, b in zip(vec, ref):
                assert (a.stats.hits, a.stats.misses, a.stats.writebacks) == (
                    b.stats.hits,
                    b.stats.misses,
                    b.stats.writebacks,
                ), f"stats, stream {i}"
                for s in range(a.config.n_sets):
                    assert a.lru_contents(s) == b.lru_contents(s), f"stream {i}"
            assert (dram_v.reads, dram_v.writes) == (dram_s.reads, dram_s.writes)


@st.composite
def wide_stream(draw):
    """Wide enough (>96 lines) to engage the array engine."""
    start = draw(st.integers(min_value=0, max_value=256))
    length = draw(st.integers(min_value=100, max_value=400))
    step = draw(st.sampled_from([1, 2, 3]))
    return list(range(start, start + length * step, step))


mixed_workload = st.lists(
    st.tuples(st.one_of(raw_stream(), wide_stream()), st.booleans()),
    min_size=2,
    max_size=10,
)


class TestAdaptiveDispatchDifferential:
    """Production dispatch: narrow batches run the dict-based scalar
    regime, wide ones the array engine, with lazy state conversion at
    every regime flip.  Mixed-width workloads force flips both ways."""

    @given(geom=geometry, streams=mixed_workload)
    @settings(max_examples=80, deadline=None)
    def test_bit_identical_across_regime_flips(self, geom, streams):
        vec, ref, dram_v, dram_s = make_pair(*geom, small_batch=None)
        for i, (lines, write) in enumerate(streams):
            lat_v = vec[0].access_lines(lines, write=write)
            lat_s = ref[0].access_lines(lines, write=write)
            assert lat_v == lat_s, f"latency, stream {i} (n={len(lines)})"
            assert_identical(vec, ref, dram_v, dram_s, ctx=f"stream {i}")

    def test_state_survives_round_trip(self):
        """scalar -> vector -> scalar conversion preserves residency,
        recency and dirty bits exactly."""
        vec, ref, dram_v, dram_s = make_pair(4, 2, 16, 4, small_batch=None)
        vec[0].access_lines([0, 4, 1, 5], write=True)  # scalar regime
        ref[0].access_lines([0, 4, 1, 5], write=True)
        big = list(range(8, 8 + 200))  # vector regime (flush)
        assert vec[0].access_lines(big, write=False) == ref[0].access_lines(
            big, write=False
        )
        assert vec[0].access_lines([0, 2], write=False) == ref[0].access_lines(
            [0, 2], write=False
        )  # back to scalar (rebuild)
        assert_identical(vec, ref, dram_v, dram_s)


class TestRoundsEngineDifferential:
    """Force the round-major general path (normally only wide batches
    trigger it) and re-run the differential checks."""

    @staticmethod
    def _force_rounds(vec):
        for c in (vec[0], vec[2]):
            c._ROUNDS_MIN_OPS = 1
            c._ROUNDS_WIDTH = 0

    @given(geom=geometry, streams=workload)
    @settings(max_examples=80, deadline=None)
    def test_bit_identical_streams_rounds(self, geom, streams):
        vec, ref, dram_v, dram_s = make_pair(*geom)
        self._force_rounds(vec)
        for i, (lines, write) in enumerate(streams):
            lat_v = vec[0].access_lines(lines, write=write)
            lat_s = ref[0].access_lines(lines, write=write)
            assert lat_v == lat_s, f"latency, stream {i} ({lines[:8]}...)"
            assert_identical(vec, ref, dram_v, dram_s, ctx=f"stream {i}")

    def test_wide_write_scan_uses_rounds(self):
        """The cold-write shape: L2 receives interleaved fills+installs
        wide enough for the rounds engine organically."""
        l1 = CacheConfig(size_bytes=64 * 32, assoc=2, line_bytes=LINE, hit_ns=1.0)
        l2 = CacheConfig(size_bytes=2048 * 32, assoc=4, line_bytes=LINE, hit_ns=6.0)
        dram_v = DRAM(DRAMConfig(), Bus(BusConfig()))
        dram_s = DRAM(DRAMConfig(), Bus(BusConfig()))
        vec = build_hierarchy(l1, l2, dram_v)
        ref = build_scalar_hierarchy(l1, l2, dram_s)
        for rep in range(3):
            lines = range(rep * 512, rep * 512 + 8192)
            assert vec[0].access_lines(lines, write=True) == ref[0].access_lines(
                lines, write=True
            ), f"rep {rep}"
            assert_identical(vec, ref, dram_v, dram_s, ctx=f"rep {rep}")
        assert vec[2].stats.writebacks > 0


class TestFastPathCoverage:
    """Deterministic streams that pin each vector path specifically."""

    def test_cold_contiguous_block(self):
        """Path 2: cold distinct stream (the ``lines_for_block`` shape)."""
        vec, ref, dram_v, dram_s = make_pair(4, 2, 16, 4)
        lines = range(0, 32)
        assert vec[0].access_lines(lines, write=True) == ref[0].access_lines(
            lines, write=True
        )
        assert_identical(vec, ref, dram_v, dram_s)

    def test_all_hit_retouch(self):
        """Path 1: warm re-touch run, repeats included."""
        vec, ref, dram_v, dram_s = make_pair(4, 2, 16, 4)
        warm = [0, 1, 2, 3]
        vec[0].access_lines(warm, write=False)
        ref[0].access_lines(warm, write=False)
        retouch = [3, 0, 3, 1, 2, 2, 0]
        assert vec[0].access_lines(retouch, write=True) == ref[0].access_lines(
            retouch, write=True
        )
        assert_identical(vec, ref, dram_v, dram_s)

    def test_mixed_residual(self):
        """Path 3: interleaved hits, misses, conflict evictions."""
        vec, ref, dram_v, dram_s = make_pair(2, 2, 4, 2)
        stream = [0, 2, 4, 0, 6, 2, 8, 0, 10, 4]
        assert vec[0].access_lines(stream, write=True) == ref[0].access_lines(
            stream, write=True
        )
        assert_identical(vec, ref, dram_v, dram_s)

    def test_writeback_cascade_through_l2(self):
        """Dirty L1 victims install in L2 and cascade L2 evictions."""
        vec, ref, dram_v, dram_s = make_pair(1, 2, 1, 2)
        for batch in ([0, 1, 2, 3, 4, 5], [0, 1, 2], [6, 7, 8]):
            assert vec[0].access_lines(batch, write=True) == ref[0].access_lines(
                batch, write=True
            )
            assert_identical(vec, ref, dram_v, dram_s, ctx=str(batch))
        assert vec[2].stats.writebacks > 0  # cascades actually exercised
