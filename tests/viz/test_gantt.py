"""Tests for the Gantt trace renderer."""

import pytest

from repro.core.functions import PageTask
from repro.radram.config import RADramConfig
from repro.radram.system import RADramMemorySystem
from repro.sim import ops as O
from repro.sim.machine import Machine
from repro.sim.memory import PagedMemory
from repro.viz.gantt import page_intervals, render_gantt


def run_small(n_pages=4, cycles=1000):
    cfg = RADramConfig.reference().with_page_bytes(4096)
    memsys = RADramMemorySystem(cfg)
    machine = Machine(memory=PagedMemory(page_bytes=4096), memsys=memsys)
    ops = [O.Activate(p, 1, PageTask.simple(cycles)) for p in range(n_pages)]
    ops += [O.WaitPage(p) for p in range(n_pages)]
    stats = machine.run(iter(ops))
    return memsys, stats


class TestIntervals:
    def test_one_interval_per_activation(self):
        memsys, _ = run_small(n_pages=3)
        intervals = page_intervals(memsys)
        assert set(intervals) == {0, 1, 2}
        assert all(len(v) == 1 for v in intervals.values())

    def test_intervals_are_staggered_by_activation_order(self):
        memsys, _ = run_small(n_pages=3)
        intervals = page_intervals(memsys)
        starts = [intervals[p][0][0] for p in range(3)]
        assert starts == sorted(starts)
        assert starts[0] < starts[1] < starts[2]

    def test_reactivation_appends_history(self):
        cfg = RADramConfig.reference().with_page_bytes(4096)
        memsys = RADramMemorySystem(cfg)
        machine = Machine(memory=PagedMemory(page_bytes=4096), memsys=memsys)
        ops = [
            O.Activate(0, 1, PageTask.simple(100)),
            O.WaitPage(0),
            O.Activate(0, 1, PageTask.simple(100)),
            O.WaitPage(0),
        ]
        machine.run(iter(ops))
        assert len(page_intervals(memsys)[0]) == 2


class TestRendering:
    @staticmethod
    def _page_rows(text):
        return sum(
            1 for line in text.splitlines() if line.lstrip().startswith("page ")
        )

    def test_render_contains_rows_and_legend(self):
        memsys, stats = run_small(n_pages=4)
        text = render_gantt(memsys, stats)
        assert "# page busy" in text
        assert self._page_rows(text) == 4
        assert "processor" in text
        assert "4 activations" in text

    def test_page_rows_capped(self):
        memsys, stats = run_small(n_pages=8)
        text = render_gantt(memsys, stats, max_pages=3)
        assert self._page_rows(text) == 3
        assert "more pages" in text

    def test_busy_marks_present(self):
        memsys, stats = run_small()
        text = render_gantt(memsys, stats)
        assert "#" in text
        assert "=" in text

    def test_empty_run_handled(self):
        cfg = RADramConfig.reference().with_page_bytes(4096)
        memsys = RADramMemorySystem(cfg)
        machine = Machine(memory=PagedMemory(page_bytes=4096), memsys=memsys)
        stats = machine.run(iter([O.Compute(10)]))
        assert "no page activity" in render_gantt(memsys, stats)
