"""Sharded serve cluster: ring, leases, fencing, takeover, prune.

Unit layers (no sockets): the consistent-hash ring's determinism and
minimal-disruption property, lease acquire/renew/expiry under a fake
clock, the epoch-fencing protocol (won / ours / lost takeover claims,
zombie appends rejected before touching the file), and the
lease-aware prune protection.

End-to-end layers (in-process servers from ``serve_factory``): two
shards sharing one cache dir redirect by key ownership; a surviving
shard fences a dead peer and adopts its incomplete journal with
gapless seq continuation; duplicate-key journals across shards are
closed out as superseded during takeover.
"""

from __future__ import annotations

import json
import os
import time

import pytest

from repro.serve import client, cluster, protocol
from repro.serve.cluster import (
    ClusterError,
    ClusterMembership,
    HashRing,
    fence_path,
    lease_path,
    protected_shards,
    read_fence_epoch,
    read_lease,
)
from repro.serve.journal import FencedError, JournalStore, job_summary
from repro.serve.server import Job
from tests.serve.test_server import _wait_until, gated_execute  # noqa: F401


# ----------------------------------------------------------------------
# Hash ring


class TestHashRing:
    def test_deterministic_across_instances(self):
        a, b = HashRing(4), HashRing(4)
        keys = [f"key-{n}" for n in range(100)]
        assert [a.owner(k) for k in keys] == [b.owner(k) for k in keys]

    def test_owners_are_reasonably_balanced(self):
        ring = HashRing(4)
        counts = [0, 0, 0, 0]
        for n in range(400):
            counts[ring.owner(f"key-{n}")] += 1
        assert all(count >= 40 for count in counts), counts
        assert max(counts) <= 240, counts

    def test_dead_shard_remaps_only_its_own_arc(self):
        ring = HashRing(3)
        keys = [f"key-{n}" for n in range(200)]
        before = {k: ring.owner(k) for k in keys}
        after = {k: ring.owner(k, alive={0, 1}) for k in keys}
        for key in keys:
            if before[key] != 2:
                assert after[key] == before[key], "live shards' keys stay put"
            else:
                assert after[key] in (0, 1), "dead arc falls to a survivor"

    def test_single_survivor_owns_everything(self):
        ring = HashRing(3)
        assert all(
            ring.owner(f"key-{n}", alive={1}) == 1 for n in range(50)
        )

    def test_no_live_shards_raises(self):
        with pytest.raises(ClusterError):
            HashRing(2).owner("key", alive=set())

    def test_rejects_empty_cluster(self):
        with pytest.raises(ClusterError):
            HashRing(0)


# ----------------------------------------------------------------------
# Leases and epochs


class FakeClock:
    def __init__(self, now=1000.0):
        self.now = now

    def __call__(self):
        return self.now


class TestLeases:
    def test_acquire_writes_lease_and_fence(self, tmp_path):
        clock = FakeClock()
        m = ClusterMembership(tmp_path, 0, 2, addr="h:1", ttl_s=3.0, clock=clock)
        assert m.acquire() == 1
        lease = read_lease(tmp_path, 0)
        assert lease.epoch == 1 and lease.addr == "h:1"
        assert lease.pid == os.getpid()
        assert not lease.expired(clock())
        assert read_fence_epoch(tmp_path, 0) == 1

    def test_live_lease_refuses_second_acquire(self, tmp_path):
        clock = FakeClock()
        first = ClusterMembership(tmp_path, 0, 2, ttl_s=3.0, clock=clock)
        first.acquire()
        second = ClusterMembership(tmp_path, 0, 2, ttl_s=3.0, clock=clock)
        with pytest.raises(ClusterError, match="lease is held"):
            second.acquire()

    def test_expired_lease_reacquire_bumps_epoch(self, tmp_path):
        clock = FakeClock()
        first = ClusterMembership(tmp_path, 0, 2, ttl_s=3.0, clock=clock)
        first.acquire()
        clock.now += 10.0  # lease expires un-renewed
        second = ClusterMembership(tmp_path, 0, 2, ttl_s=3.0, clock=clock)
        assert second.acquire() == 2, "restart supersedes the stale epoch"
        # ... and the fence already names the new epoch, so the old
        # incarnation is rejected even if it wakes back up.
        with pytest.raises(FencedError):
            first.check_fence()

    def test_renew_refreshes_the_heartbeat(self, tmp_path):
        clock = FakeClock()
        m = ClusterMembership(tmp_path, 0, 2, ttl_s=3.0, clock=clock)
        m.acquire()
        clock.now += 2.5
        assert m.renew() is True
        assert not read_lease(tmp_path, 0).expired(clock())

    def test_release_unlinks_the_lease(self, tmp_path):
        m = ClusterMembership(tmp_path, 0, 2, ttl_s=3.0, clock=FakeClock())
        m.acquire()
        m.release()
        assert read_lease(tmp_path, 0) is None
        assert read_fence_epoch(tmp_path, 0) == 1, "fence outlives the lease"

    def test_alive_and_dead_slots(self, tmp_path):
        clock = FakeClock()
        m0 = ClusterMembership(tmp_path, 0, 3, ttl_s=3.0, clock=clock)
        m1 = ClusterMembership(tmp_path, 1, 3, ttl_s=3.0, clock=clock)
        m0.acquire()
        m1.acquire()
        assert m0.alive() == {0, 1}
        assert m0.dead_slots() == [2], "slot 2 never started"
        clock.now += 10.0
        m0.renew()  # only shard 0 heartbeats
        assert m0.alive() == {0}
        assert m0.dead_slots() == [1, 2]

    def test_invalid_parameters_rejected(self, tmp_path):
        with pytest.raises(ClusterError):
            ClusterMembership(tmp_path, 2, 2)
        with pytest.raises(ClusterError):
            ClusterMembership(tmp_path, 0, 1, ttl_s=0.0)


class TestFencing:
    def _pair(self, tmp_path, clock):
        m0 = ClusterMembership(tmp_path, 0, 3, ttl_s=3.0, clock=clock)
        m1 = ClusterMembership(tmp_path, 1, 3, ttl_s=3.0, clock=clock)
        m0.acquire()
        m1.acquire()
        return m0, m1

    def test_fence_slot_won_bumps_epoch_and_zombie_is_rejected(self, tmp_path):
        clock = FakeClock()
        m0, m1 = self._pair(tmp_path, clock)
        clock.now += 10.0  # shard 0 goes silent
        outcome, epoch = m1.fence_slot(0)
        assert (outcome, epoch) == ("won", 2)
        assert read_fence_epoch(tmp_path, 0) == 2
        with pytest.raises(FencedError):
            m0.check_fence()
        assert m0.renew() is False, "a fenced zombie must stop heartbeating"
        assert m0.fenced is True
        assert 0 not in m0.alive(), "a fenced shard stops counting itself"

    def test_fence_slot_same_epoch_race_is_lost(self, tmp_path):
        clock = FakeClock()
        m0, m1 = self._pair(tmp_path, clock)
        m2 = ClusterMembership(tmp_path, 2, 3, ttl_s=3.0, clock=clock)
        m2.acquire()
        clock.now += 10.0
        assert m1.fence_slot(0)[0] == "won"
        # Simulate the true race window: shard 2 computed the same next
        # epoch (it read the pre-takeover fence) and finds shard 1's
        # O_EXCL claim already on disk.
        fence_path(tmp_path, 0).unlink()
        assert m2.fence_slot(0) == ("lost", 2)
        # Re-checking one's own claim reports "ours", not a new win.
        assert m1.fence_slot(0) == ("ours", 2)

    def test_shard_cannot_fence_itself(self, tmp_path):
        m0, _m1 = self._pair(tmp_path, FakeClock())
        with pytest.raises(ClusterError):
            m0.fence_slot(0)

    def test_check_fence_passes_while_epoch_current(self, tmp_path):
        m0, _m1 = self._pair(tmp_path, FakeClock())
        m0.check_fence()  # no raise


# ----------------------------------------------------------------------
# Zombie appends at the journal layer


class _InlineLoop:
    """Stub loop: run callbacks inline (publish tests need no asyncio)."""

    def call_soon_threadsafe(self, fn, *args):
        fn(*args)


class TestZombiePublish:
    def test_fenced_append_rejected_before_touching_the_file(self, tmp_path):
        store = JournalStore(tmp_path)
        jnl = store.create("a" * 16)
        jnl.append({"type": "request", "job": "a" * 16, "shard": 0})
        before = store.path_for("a" * 16).read_bytes()

        def fence():
            raise FencedError("slot 0 taken over at epoch 2")

        jnl.fence = fence
        fenced_callbacks = []
        request = protocol.SubmitRequest(kind="app", tenant="t", spec={})
        job = Job("k" * 16, request, _InlineLoop(), job_id="a" * 16, journal=jnl)
        job.on_fenced = lambda: fenced_callbacks.append(1)

        job.publish({"event": "progress"})

        assert job.journal_errors == 1 and job.fenced_rejections == 1
        assert fenced_callbacks == [1]
        assert store.path_for("a" * 16).read_bytes() == before, (
            "the zombie's append must never reach the journal file"
        )
        # In-memory fan-out still happened: local subscribers unblock.
        assert job.events and job.events[-1]["event"] == "progress"

    def test_fence_checked_under_the_append_lock(self, tmp_path):
        store = JournalStore(tmp_path)
        jnl = store.create("b" * 16)
        calls = []
        jnl.fence = lambda: calls.append(1)
        jnl.append({"type": "event", "seq": 1})
        assert calls == [1]
        jnl.close()


# ----------------------------------------------------------------------
# Lease-aware prune (satellite: prune must not eat live shards' journals)


def _write_journal(store, job_id, records):
    jnl = store.create(job_id)
    for record in records:
        jnl.append(record)
    jnl.close()
    os.utime(store.path_for(job_id), (1.0, 1.0))  # ancient


DONE_BY_SHARD_0 = [
    {"type": "request", "job": "a" * 16, "shard": 0, "epoch": 1},
    {"type": "event", "seq": 1, "event": {"event": "done", "ok": True}},
]


class TestLeaseAwarePrune:
    def test_live_lease_protects_even_completed_journals(self, tmp_path):
        store = JournalStore(tmp_path / "jobs")
        _write_journal(store, "a" * 16, DONE_BY_SHARD_0)
        m = ClusterMembership(tmp_path / "cluster", 0, 2, ttl_s=3600.0)
        m.acquire()

        removed = store.prune(days=7)
        assert removed == {"journals": 0, "tmp": 0, "leased": 1}
        assert store.job_ids() == ["a" * 16]

        m.release()
        removed = store.prune(days=7)
        assert removed == {"journals": 1, "tmp": 0, "leased": 0}, (
            "after release only the lease-free done-check applies; the "
            "fence file alone must not protect forever"
        )

    def test_expired_lease_does_not_protect(self, tmp_path):
        store = JournalStore(tmp_path / "jobs")
        _write_journal(store, "a" * 16, DONE_BY_SHARD_0)
        clock = FakeClock()
        m = ClusterMembership(
            tmp_path / "cluster", 0, 2, ttl_s=3.0, clock=clock
        )
        m.acquire()
        clock.now += 100.0  # dead, per the wall clock too
        time.sleep(0)  # (wall clock governs protected_shards)
        # Rewrite the lease with a long-stale renewed_at on the wall clock.
        cluster._write_atomic(
            lease_path(tmp_path / "cluster", 0),
            {"shard": 0, "epoch": 1, "addr": "", "pid": 1,
             "renewed_at": time.time() - 100.0, "ttl_s": 3.0},
        )
        assert store.prune(days=7)["journals"] == 1

    def test_fresh_takeover_claim_protects_mid_takeover_slot(self, tmp_path):
        store = JournalStore(tmp_path / "jobs")
        _write_journal(store, "a" * 16, DONE_BY_SHARD_0)
        root = tmp_path / "cluster"
        root.mkdir()
        (root / "takeover-0-2.claim").write_text(json.dumps({"by": 1}))
        assert store.prune(days=7) == {"journals": 0, "tmp": 0, "leased": 1}

        os.utime(root / "takeover-0-2.claim", (1.0, 1.0))  # stale claim
        assert store.prune(days=7)["journals"] == 1

    def test_protected_shards_ignores_garbage(self, tmp_path):
        root = tmp_path / "cluster"
        root.mkdir()
        (root / "shard-x.lease").write_text("not json")
        (root / "takeover-zzz.claim").write_text("{}")
        assert protected_shards(root) == set()
        assert protected_shards(tmp_path / "absent") == set()


# ----------------------------------------------------------------------
# End-to-end: two in-process shards sharing one cache dir


def _request_owned_by(shard, n_shards=2):
    """An app submit whose coalesce key the ring assigns to ``shard``."""
    ring = HashRing(n_shards)
    for seed in range(256):
        doc = {
            "kind": "app", "app": "array-insert", "mode": "speedup",
            "pages": 2.0, "seed": seed, "tenant": "t",
        }
        key = protocol.parse_submit(doc).coalesce_key()
        if ring.owner(key) == shard:
            return doc, key
    raise AssertionError("no seed hashed to the wanted shard")


def _journal_dir(tmp_path):
    return tmp_path / "serve-cache" / "jobs"  # serve_factory's cache dir


def _cluster_dir(tmp_path):
    return tmp_path / "serve-cache" / "cluster"


def _plant_dead_lease(tmp_path, shard):
    """An expired heartbeat for ``shard`` — the crashed-peer setup."""
    root = _cluster_dir(tmp_path)
    root.mkdir(parents=True, exist_ok=True)
    cluster._write_atomic(
        lease_path(root, shard),
        {"shard": shard, "epoch": 1, "addr": "127.0.0.1:1", "pid": 1,
         "renewed_at": time.time() - 60.0, "ttl_s": 0.2},
    )


class TestClusterEndToEnd:
    def test_submit_redirects_to_owning_shard_and_client_follows(
        self, serve_factory, tmp_path
    ):
        shard_a = serve_factory(shards=2, shard_index=0, lease_ttl_s=30.0)
        shard_b = serve_factory(shards=2, shard_index=1, lease_ttl_s=30.0)
        request, _key = _request_owned_by(1)

        # A bare submit against the wrong shard is a 307 with Location.
        with pytest.raises(client.ServerError) as info:
            list(client.stream_submit(shard_a.base_url, request, timeout=30))
        assert info.value.status == 307
        assert info.value.headers["location"] == (
            f"http://127.0.0.1:{shard_b.port}/submit"
        )
        assert info.value.payload["event"] == "redirect"
        assert info.value.payload["shard"] == 1

        # The resilient client follows it to completion.
        events = list(
            client.stream_submit_resilient(
                shard_a.base_url, request, timeout=120
            )
        )
        assert events[-1]["event"] == "done" and events[-1]["ok"] is True
        assert shard_a.metrics()["cluster.redirects_total"] == 2.0
        assert shard_b.metrics()["serve.jobs_total"] == 1.0

        status = client.get_json(shard_a.base_url, "/cluster")
        assert status["cluster"] is True and status["alive"] == [0, 1]
        assert status["peers"]["1"]["addr"] == f"127.0.0.1:{shard_b.port}"

    def test_own_keys_are_served_locally(self, serve_factory):
        shard_a = serve_factory(shards=2, shard_index=0, lease_ttl_s=30.0)
        serve_factory(shards=2, shard_index=1, lease_ttl_s=30.0)
        request, _key = _request_owned_by(0)
        events = list(
            client.stream_submit(shard_a.base_url, request, timeout=120)
        )
        assert events[-1]["ok"] is True
        assert shard_a.metrics().get("cluster.redirects_total", 0.0) == 0.0

    def test_dead_peer_journal_is_fenced_and_adopted(
        self, serve_factory, tmp_path
    ):
        """The takeover sweep: shard 0 died mid-job (expired lease +
        incomplete journal); shard 1 fences the slot, adopts the job
        with seq continuation, and runs it to completion."""
        request, key = _request_owned_by(0)
        spec = protocol.parse_submit(request).spec
        store = JournalStore(_journal_dir(tmp_path))
        job_id = "d" * 16 + "-feed0000"
        jnl = store.create(job_id)
        jnl.append({
            "type": "request", "job": job_id, "key": key, "kind": "app",
            "tenant": "t", "spec": spec, "created_at": time.time(),
            "shard": 0, "epoch": 1,
        })
        jnl.append({
            "type": "event", "seq": 1,
            "event": {"event": "queued", "job": job_id, "seq": 1},
        })
        jnl.close()
        _plant_dead_lease(tmp_path, 0)

        shard_b = serve_factory(shards=2, shard_index=1, lease_ttl_s=0.3)
        _wait_until(
            lambda: shard_b.metrics().get("cluster.takeovers_total", 0) == 1.0,
            message="takeover of the dead shard",
        )
        assert read_fence_epoch(_cluster_dir(tmp_path), 0) >= 2, (
            "the takeover bumped slot 0's fence epoch"
        )
        _wait_until(
            lambda: client.get_json(
                shard_b.base_url, f"/jobs/{job_id}"
            )["status"] == "done",
            message="adopted job to finish",
        )
        records = store.read(job_id)
        summary = job_summary(records)
        assert summary["done"] is True and summary["ok"] is True
        seqs = [r["seq"] for r in records if r.get("type") == "event"]
        assert seqs == sorted(seqs) and len(set(seqs)) == len(seqs)
        assert seqs[0] == 1 and seqs[1] == 2, (
            "adoption continues the dead shard's numbering gaplessly"
        )
        recovered = next(
            r["event"] for r in records
            if r.get("type") == "event"
            and r["event"].get("event") == "recovered"
        )
        assert recovered["takeover_from"] == 0
        metrics = shard_b.metrics()
        assert metrics["cluster.takeover_jobs_adopted"] == 1.0
        assert metrics["serve.recovered_jobs"] == 1.0

    def test_duplicate_key_journals_across_shards_are_superseded(
        self, serve_factory, tmp_path, gated_execute  # noqa: F811
    ):
        """Satellite: the same request journaled on two shards (crash,
        client resubmitted to the survivor, crash again) must run once —
        the takeover closes the duplicate as superseded."""
        request, key = _request_owned_by(0)
        spec = protocol.parse_submit(request).spec
        store = JournalStore(_journal_dir(tmp_path))

        def plant(job_id, shard):
            jnl = store.create(job_id)
            jnl.append({
                "type": "request", "job": job_id, "key": key, "kind": "app",
                "tenant": "t", "spec": spec, "created_at": time.time(),
                "shard": shard, "epoch": 1,
            })
            jnl.append({
                "type": "event", "seq": 1,
                "event": {"event": "queued", "job": job_id, "seq": 1},
            })
            jnl.close()

        mine, theirs = "a" * 16 + "-00000000", "b" * 16 + "-11111111"
        plant(mine, 0)  # this shard's own incomplete journal
        plant(theirs, 1)  # the dead peer's duplicate of the same key
        _plant_dead_lease(tmp_path, 1)

        shard_a = serve_factory(shards=2, shard_index=0, lease_ttl_s=0.3)
        try:
            # Startup recovery re-queued `mine`; the gate holds it
            # in-flight while the takeover sweep finds the duplicate.
            _wait_until(
                lambda: shard_a.metrics().get(
                    "serve.superseded_journals", 0
                ) == 1.0,
                message="duplicate journal to be closed as superseded",
            )
        finally:
            gated_execute["release"].set()
        _wait_until(
            lambda: client.get_json(
                shard_a.base_url, f"/jobs/{mine}"
            )["status"] == "done",
            message="surviving job to finish",
        )
        assert len(gated_execute["calls"]) == 1, "the work ran exactly once"

        loser = job_summary(store.read(theirs))
        assert loser["done"] is True and loser["ok"] is False
        last = [
            r["event"] for r in store.read(theirs) if r.get("type") == "event"
        ][-1]
        assert last["superseded"] is True
        assert shard_a.metrics()["cluster.takeovers_total"] == 1.0

    def test_resume_of_dead_shards_job_adopts_on_demand(
        self, serve_factory, tmp_path
    ):
        """A resume arriving before the periodic sweep fences and adopts
        immediately — the client does not wait out the lease TTL."""
        request, key = _request_owned_by(1)
        spec = protocol.parse_submit(request).spec
        store = JournalStore(_journal_dir(tmp_path))
        job_id = "e" * 16 + "-0dead000"
        jnl = store.create(job_id)
        jnl.append({
            "type": "request", "job": job_id, "key": key, "kind": "app",
            "tenant": "t", "spec": spec, "created_at": time.time(),
            "shard": 1, "epoch": 1,
        })
        jnl.append({
            "type": "event", "seq": 1,
            "event": {"event": "queued", "job": job_id, "seq": 1},
        })
        jnl.close()
        _plant_dead_lease(tmp_path, 1)

        # A long lease TTL on the survivor keeps the periodic sweep
        # from racing the on-demand path in this test.
        shard_a = serve_factory(shards=2, shard_index=0, lease_ttl_s=120.0)
        events = list(
            client.stream_submit(
                shard_a.base_url,
                {"kind": "resume", "job": job_id, "after_seq": 1,
                 "tenant": "t"},
                timeout=120,
            )
        )
        accepted = events[0]
        assert accepted["event"] == "accepted"
        assert accepted.get("adopted") is True
        assert events[-1]["event"] == "done" and events[-1]["ok"] is True
        seqs = [e["seq"] for e in events if "seq" in e and e["seq"]]
        assert all(s > 1 for s in seqs), "after_seq=1 replays nothing old"
        metrics = shard_a.metrics()
        assert metrics["cluster.takeovers_total"] == 1.0
        assert read_fence_epoch(_cluster_dir(tmp_path), 1) >= 2

    def test_duplicate_shard_index_boot_is_refused(self, serve_factory):
        serve_factory(shards=2, shard_index=0, lease_ttl_s=30.0)
        with pytest.raises(ClusterError, match="lease is held"):
            serve_factory(shards=2, shard_index=0, lease_ttl_s=30.0)

    def test_metrics_and_history_expose_cluster_counters(
        self, serve_factory
    ):
        from repro.serve.server import serve_history_record

        shard_a = serve_factory(shards=2, shard_index=0, lease_ttl_s=30.0)
        request, _key = _request_owned_by(0)
        events = list(
            client.stream_submit(shard_a.base_url, request, timeout=120)
        )
        assert events[-1]["ok"] is True
        metrics = client.get_json(shard_a.base_url, "/metrics")
        for name in (
            "cluster.shards_alive", "cluster.takeovers_total",
            "cluster.fenced_appends_rejected", "cluster.redirects_total",
            "cluster.shard.0.queue_depth", "cluster.shard.0.active_jobs",
        ):
            assert name in metrics, name
        assert metrics["cluster.shards_alive"] >= 1.0

        record = serve_history_record(shard_a.server)
        assert record["kind"] == "serve" and record["shard"] == 0
        assert record["admission"]["jobs_total"] == 1.0
        assert record["cluster"]["shards"] == 2
        assert "count" in record["queue_wait_ms"]
