"""In-process server fixture for the serve end-to-end tests.

Runs a real :class:`~repro.serve.server.SweepServer` on its own event
loop in a daemon thread, bound to an ephemeral port — no subprocesses,
so tests can monkeypatch :mod:`repro.experiments.harness` internals and
the server's worker threads see the patched versions.
"""

from __future__ import annotations

import asyncio
import threading

import pytest

from repro.serve.server import ServeConfig, SweepServer


class RunningServer:
    """One live server: base URL, metrics access, thread lifecycle."""

    def __init__(self, config: ServeConfig) -> None:
        self.config = config
        self.server: SweepServer = None  # set on the loop thread
        self.loop: asyncio.AbstractEventLoop = None
        self.port: int = None
        self._ready = threading.Event()
        self._boot_error = None
        self._thread = threading.Thread(target=self._run, daemon=True)
        self._thread.start()
        if not self._ready.wait(timeout=30):
            raise AssertionError("server did not start in time")
        if self._boot_error is not None:
            raise self._boot_error

    @property
    def base_url(self) -> str:
        return f"http://{self.config.host}:{self.port}"

    def _run(self) -> None:
        asyncio.run(self._amain())

    async def _amain(self) -> None:
        self.loop = asyncio.get_running_loop()
        self.server = SweepServer(self.config)
        try:
            addresses = await self.server.start()
        except Exception as exc:  # surface boot failures (port, lease)
            self._boot_error = exc
            self._ready.set()
            return
        self.port = addresses[0][1]
        self._ready.set()
        await self.server.wait_drained()
        await self.server.close()

    def request_shutdown(self) -> None:
        self.loop.call_soon_threadsafe(self.server.request_shutdown)

    def stop(self, timeout: float = 30.0) -> None:
        if self._thread.is_alive():
            try:
                self.request_shutdown()
            except RuntimeError:  # loop already closed: thread is exiting
                pass
            self._thread.join(timeout)
        assert not self._thread.is_alive(), "server thread did not drain"

    def metrics(self):
        return self.server.registry.as_dict()


@pytest.fixture
def serve_factory(tmp_path, monkeypatch):
    """Start servers on ephemeral ports; always drained at test end."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "serve-cache"))
    started = []

    def start(**overrides) -> RunningServer:
        overrides.setdefault("port", 0)
        overrides.setdefault("jobs", 1)
        server = RunningServer(ServeConfig(**overrides))
        started.append(server)
        return server

    yield start
    for server in started:
        server.stop()
