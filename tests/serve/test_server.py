"""End-to-end serve tests against an in-process server.

The server runs on a thread inside the test process, so
``harness._timed_execute`` can be monkeypatched with gated fakes —
letting the tests hold jobs in flight deterministically while clients
coalesce, queue and get rejected.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.experiments import harness
from repro.serve import client
from repro.serve.server import FairQueue


def _submit_events(server, request, out, key, sse=False):
    out[key] = list(
        client.stream_submit(server.base_url, request, sse=sse, timeout=120)
    )


def _wait_until(predicate, timeout=30.0, message="condition"):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(0.005)
    raise AssertionError(f"timed out waiting for {message}")


@pytest.fixture
def gated_execute(monkeypatch):
    """Replace real task execution with a gate the test controls."""
    state = {
        "calls": [],
        "started": threading.Event(),
        "release": threading.Event(),
        "lock": threading.Lock(),
    }

    def gated(task, trace_summary=False):
        with state["lock"]:
            state["calls"].append(task)
        state["started"].set()
        assert state["release"].wait(timeout=60), "gate never released"
        return harness.TaskResult(
            task=task, values={"speedup": float(len(task.app_name))}, wall_s=0.01
        )

    monkeypatch.setattr(harness, "_timed_execute", gated)
    return state


APP_REQUEST = {"kind": "app", "app": "array-insert", "pages": 2.0}


class TestServeEndToEnd:
    def test_submit_app_streams_full_event_sequence(self, serve_factory):
        server = serve_factory()
        events = list(
            client.stream_submit(
                server.base_url, dict(APP_REQUEST, tenant="t"), timeout=120
            )
        )
        kinds = [e["event"] for e in events]
        assert kinds[0] == "accepted" and events[0]["coalesced"] is False
        assert "queued" in kinds and "started" in kinds
        assert "progress" in kinds and "result" in kinds and "sweep" in kinds
        assert kinds[-1] == "done" and events[-1]["ok"] is True
        result = next(e for e in events if e["event"] == "result")
        assert result["values"]["speedup"] > 0

        health = client.get_json(server.base_url, "/healthz")
        assert health["ok"] is True
        # The job-finished callback (which decrements the active count)
        # runs on the loop just after the final event streams out.
        _wait_until(
            lambda: client.get_json(server.base_url, "/healthz")["active_jobs"]
            == 0,
            message="active count to settle",
        )

    def test_three_clients_one_computation(self, serve_factory, gated_execute):
        """Request-level single-flight: identical submits from three
        tenants run the underlying sweep exactly once."""
        server = serve_factory(concurrency=1)
        results = {}
        threads = [
            threading.Thread(
                target=_submit_events,
                args=(server, dict(APP_REQUEST, tenant="a"), results, 0),
            )
        ]
        threads[0].start()
        _wait_until(
            gated_execute["started"].is_set, message="first job to start"
        )
        for i, tenant in ((1, "b"), (2, "c")):
            t = threading.Thread(
                target=_submit_events,
                args=(server, dict(APP_REQUEST, tenant=tenant), results, i),
            )
            t.start()
            threads.append(t)
        _wait_until(
            lambda: server.metrics().get("serve.coalesce_hits", 0) == 2,
            message="both followers to coalesce",
        )
        gated_execute["release"].set()
        for t in threads:
            t.join(timeout=60)
        assert len(results) == 3

        assert len(gated_execute["calls"]) == 1, "one underlying computation"
        metrics = server.metrics()
        assert metrics["serve.requests_total"] == 3
        assert metrics["serve.jobs_total"] == 1
        assert metrics["serve.coalesce_hits"] == 2

        flags = sorted(events[0]["coalesced"] for events in results.values())
        assert flags == [False, True, True]
        payloads = [
            [e for e in events if e["event"] == "result"]
            for events in results.values()
        ]
        assert payloads[0] and payloads[0] == payloads[1] == payloads[2]
        assert all(
            events[-1]["event"] == "done" and events[-1]["ok"]
            for events in results.values()
        )

    def test_task_level_singleflight_across_different_requests(
        self, serve_factory, gated_execute
    ):
        """Two *different* requests sharing one task: the shared task is
        computed once via the SingleFlight table, non-shared tasks run
        normally."""
        server = serve_factory(concurrency=2)
        shared = {"app": "array-insert", "pages": 2.0}
        req1 = {"kind": "tasks", "tenant": "a",
                "tasks": [shared, {"app": "array-find", "pages": 2.0}]}
        req2 = {"kind": "tasks", "tenant": "b",
                "tasks": [shared, {"app": "database", "pages": 2.0}]}
        results = {}
        t1 = threading.Thread(
            target=_submit_events, args=(server, req1, results, 1)
        )
        t1.start()
        _wait_until(
            gated_execute["started"].is_set, message="first sweep executing"
        )
        t2 = threading.Thread(
            target=_submit_events, args=(server, req2, results, 2)
        )
        t2.start()
        # Job 2 claims its non-shared task and waits on the shared one.
        _wait_until(
            lambda: server.metrics().get("serve.tasks.coalesce_hits", 0) == 1,
            message="shared task to coalesce",
        )
        gated_execute["release"].set()
        t1.join(timeout=60)
        t2.join(timeout=60)

        executed = sorted(t.app_name for t in gated_execute["calls"])
        assert executed == ["array-find", "array-insert", "database"]
        metrics = server.metrics()
        assert metrics["serve.tasks.computed"] == 3
        assert metrics["serve.tasks.coalesce_hits"] == 1
        assert metrics["serve.jobs_total"] == 2  # different requests: no
        assert metrics.get("serve.coalesce_hits", 0) == 0  # request coalesce

        def result_values(events, task_name):
            return [
                e["values"]
                for e in events
                if e["event"] == "result" and task_name in e["task"]
            ]

        assert result_values(results[1], "array-insert") == result_values(
            results[2], "array-insert"
        )

    def test_backpressure_rejects_with_429(self, serve_factory, gated_execute):
        server = serve_factory(concurrency=1, max_queue=1)
        results = {}
        t_active = threading.Thread(
            target=_submit_events,
            args=(server, dict(APP_REQUEST, tenant="a"), results, "active"),
        )
        t_active.start()
        _wait_until(gated_execute["started"].is_set, message="job to start")

        queued_request = {"kind": "app", "app": "array-find", "pages": 2.0}
        t_queued = threading.Thread(
            target=_submit_events,
            args=(server, queued_request, results, "queued"),
        )
        t_queued.start()
        _wait_until(
            lambda: len(server.server.queue) == 1, message="a queued job"
        )

        with pytest.raises(client.ServerError) as info:
            list(
                client.stream_submit(
                    server.base_url,
                    {"kind": "app", "app": "database", "pages": 2.0},
                    timeout=30,
                )
            )
        assert info.value.status == 429
        assert info.value.payload["max_queue"] == 1

        gated_execute["release"].set()
        t_active.join(timeout=60)
        t_queued.join(timeout=60)
        assert results["active"][-1]["ok"] and results["queued"][-1]["ok"]
        assert server.metrics()["serve.rejected_total"] == 1

    def test_draining_rejects_with_503_then_finishes_active_work(
        self, serve_factory, gated_execute
    ):
        server = serve_factory(concurrency=1)
        results = {}
        t_active = threading.Thread(
            target=_submit_events,
            args=(server, dict(APP_REQUEST, tenant="a"), results, "active"),
        )
        t_active.start()
        _wait_until(gated_execute["started"].is_set, message="job to start")

        server.request_shutdown()
        _wait_until(
            lambda: client.get_json(server.base_url, "/healthz")["draining"],
            message="drain flag",
        )
        with pytest.raises(client.ServerError) as info:
            list(
                client.stream_submit(
                    server.base_url,
                    {"kind": "app", "app": "array-find", "pages": 2.0},
                    timeout=30,
                )
            )
        assert info.value.status == 503

        gated_execute["release"].set()
        t_active.join(timeout=60)
        assert results["active"][-1]["event"] == "done"
        assert results["active"][-1]["ok"] is True
        server.stop()  # drains and exits; stop() asserts the thread died

    def test_sse_framing_end_to_end(self, serve_factory):
        server = serve_factory()
        events = list(
            client.stream_submit(
                server.base_url, dict(APP_REQUEST), sse=True, timeout=120
            )
        )
        assert events[0]["event"] == "accepted"
        assert events[-1]["event"] == "done" and events[-1]["ok"] is True

    def test_invalid_submit_rejected_400(self, serve_factory):
        server = serve_factory()
        with pytest.raises(client.ServerError) as info:
            list(
                client.stream_submit(
                    server.base_url, {"kind": "app", "app": "bogus"}, timeout=30
                )
            )
        assert info.value.status == 400
        assert "unknown app" in str(info.value.payload)

    def test_introspection_endpoints(self, serve_factory):
        server = serve_factory()
        list(client.stream_submit(server.base_url, dict(APP_REQUEST), timeout=120))

        metrics = client.get_json(server.base_url, "/metrics")
        assert metrics["serve.jobs_total"] == 1
        assert metrics["serve.requests_total"] == 1
        assert metrics["serve.tasks.computed"] == 1

        cache_stats = client.get_json(server.base_url, "/cache/stats")
        assert cache_stats["entries"] >= 1
        assert "3" in cache_stats["by_schema"] or 3 in map(
            int, cache_stats["by_schema"]
        )

        with pytest.raises(client.ServerError) as info:
            client.get_json(server.base_url, "/nope")
        assert info.value.status == 404

        index = client.get_json(server.base_url, "/")
        assert "POST /submit" in index["endpoints"]


class TestFairQueue:
    def test_weighted_interleaving(self):
        queue = FairQueue(weights={"b": 2.0})
        for i in range(4):
            queue.push("a", f"a{i}")
            queue.push("b", f"b{i}")
        order = [queue.pop() for _ in range(8)]
        # Stride scheduling: b (weight 2) gets two slots per a slot.
        assert order == ["a0", "b0", "b1", "a1", "b2", "b3", "a2", "a3"]

    def test_equal_weights_alternate(self):
        queue = FairQueue()
        for i in range(3):
            queue.push("x", f"x{i}")
            queue.push("y", f"y{i}")
        order = [queue.pop() for _ in range(6)]
        assert order == ["x0", "y0", "x1", "y1", "x2", "y2"]

    def test_returning_tenant_cannot_claim_idle_credit(self):
        queue = FairQueue()
        for i in range(3):
            queue.push("a", f"a{i}")
        assert [queue.pop() for _ in range(3)] == ["a0", "a1", "a2"]
        # b was absent the whole time; on arrival it is clamped to the
        # virtual clock, not treated as infinitely behind.
        queue.push("b", "b0")
        queue.push("a", "a3")
        assert queue.pop() == "b0"  # b is *slightly* behind, not owed 3 slots
        assert queue.pop() == "a3"

    def test_pop_empty_returns_none(self):
        queue = FairQueue()
        assert queue.pop() is None
        queue.push("a", "a0")
        assert queue.pop() == "a0"
        assert queue.pop() is None

    def test_len_and_depth(self):
        queue = FairQueue()
        queue.push("a", 1)
        queue.push("a", 2)
        queue.push("b", 3)
        assert len(queue) == 3
        assert queue.depth("a") == 2 and queue.depth("b") == 1
        queue.pop()
        assert len(queue) == 2

    def test_nonpositive_weight_falls_back_to_default(self):
        queue = FairQueue(weights={"a": 0.0})
        assert queue.weight("a") == 1.0
