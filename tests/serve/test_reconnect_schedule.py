"""Exact reconnect/backoff schedules for the resilient client.

Mirrors ``test_retry_schedule.py``'s style for the harness: the e2e
tests prove ``stream_submit_resilient`` survives real drops; these pin
down the *schedule* — which delays are slept, which ``after_seq`` each
reconnect carries, how ``Retry-After`` is honored and budgeted — with
a scripted transport and a recording sleep, no sockets and no real
time.
"""

from __future__ import annotations

import pytest

from repro.serve.client import (
    BusyError,
    ServerError,
    stream_submit_resilient,
)

JOB = "0123456789abcdef-00aa11bb"


def _ev(kind, seq=None, **fields):
    event = {"event": kind, "job": JOB, **fields}
    if seq is not None:
        event["seq"] = seq
    return event


class Drop(ConnectionResetError):
    """A scripted mid-stream disconnect."""


class FakeTransport:
    """Scripted attempts: each is an event list (exceptions raise in
    place) or a bare exception raised at connect time.  Records every
    request so tests can assert the resume envelope per attempt."""

    def __init__(self, attempts):
        self.attempts = list(attempts)
        self.requests = []
        self.urls = []  # base_url per attempt: the redirect trail

    def __call__(self, base_url, request, sse=False, timeout=None):
        self.requests.append(dict(request))
        self.urls.append(base_url)
        script = self.attempts.pop(0)
        if isinstance(script, BaseException):
            raise script

        def gen():
            for item in script:
                if isinstance(item, BaseException):
                    raise item
                yield item

        return gen()


class FakeSleep:
    def __init__(self):
        self.delays = []

    def __call__(self, seconds):
        self.delays.append(seconds)


SUBMIT = {"kind": "app", "app": "array-insert", "pages": 2.0, "tenant": "t"}


def _run(transport, **kwargs):
    sleep = FakeSleep()
    events = list(
        stream_submit_resilient(
            "http://fake", SUBMIT, sleep=sleep, transport=transport, **kwargs
        )
    )
    return events, sleep.delays


class TestReconnectSchedule:
    def test_drop_then_resume_carries_last_seq(self):
        transport = FakeTransport([
            [_ev("accepted", coalesced=False), _ev("queued", 1), _ev("started", 2),
             Drop("mid-stream")],
            [_ev("accepted", resumed=True), _ev("result", 3),
             _ev("done", 4, ok=True)],
        ])
        events, delays = _run(transport)
        assert delays == [0.25]
        assert transport.requests[0] == SUBMIT
        assert transport.requests[1] == {
            "kind": "resume", "job": JOB, "after_seq": 2, "tenant": "t",
        }
        kinds = [e["event"] for e in events]
        assert kinds == ["accepted", "queued", "started", "accepted", "result", "done"]

    def test_replayed_duplicates_are_suppressed_by_seq(self):
        transport = FakeTransport([
            [_ev("accepted"), _ev("queued", 1), _ev("started", 2), Drop()],
            # Server replays from after_seq but the client asked late:
            # seqs 1..2 come again and must not be re-yielded.
            [_ev("accepted", resumed=True), _ev("queued", 1), _ev("started", 2),
             _ev("result", 3), _ev("done", 4, ok=True)],
        ])
        events, _ = _run(transport)
        seqs = [e["seq"] for e in events if "seq" in e]
        assert seqs == [1, 2, 3, 4], "each seq exactly once, in order"

    def test_geometric_backoff_with_cap_then_raise(self):
        transport = FakeTransport([ConnectionRefusedError()] * 6)
        sleep = FakeSleep()
        with pytest.raises(ConnectionError):
            list(
                stream_submit_resilient(
                    "http://fake", SUBMIT, sleep=sleep, transport=transport,
                    reconnects=5, backoff_s=1.0, backoff_cap_s=4.0,
                )
            )
        assert sleep.delays == [1.0, 2.0, 4.0, 4.0, 4.0]
        # Pre-accept failures resubmit the original request verbatim.
        assert all(req == SUBMIT for req in transport.requests)

    def test_backoff_ladder_resets_once_data_flows(self):
        transport = FakeTransport([
            ConnectionRefusedError(),
            ConnectionRefusedError(),
            [_ev("accepted"), _ev("queued", 1), Drop()],
            [_ev("accepted", resumed=True), _ev("done", 2, ok=True)],
        ])
        _, delays = _run(transport, backoff_s=1.0)
        assert delays == [1.0, 2.0, 1.0], "third delay restarts the ladder"

    def test_retry_after_honored_on_429(self):
        transport = FakeTransport([
            ServerError(429, {"error": "queue full"}, {"retry-after": "3"}),
            [_ev("accepted"), _ev("done", 1, ok=True)],
        ])
        events, delays = _run(transport)
        assert delays == [3.0]
        assert events[-1]["ok"] is True

    def test_retry_after_budget_exhaustion_raises_busy(self):
        transport = FakeTransport(
            [ServerError(503, {"error": "draining"}, {"retry-after": "3"})] * 3
        )
        sleep = FakeSleep()
        with pytest.raises(BusyError) as info:
            list(
                stream_submit_resilient(
                    "http://fake", SUBMIT, sleep=sleep, transport=transport,
                    retry_budget_s=5.0,
                )
            )
        assert sleep.delays == [3.0], "second wait would overrun the budget"
        assert info.value.spent_s == 3.0
        assert info.value.last.status == 503

    def test_malformed_retry_after_falls_back_to_default(self):
        err = ServerError(429, {}, {"retry-after": "soon"})
        assert err.retry_after() == 1.0
        assert ServerError(429, {}, {}).retry_after(default=2.5) == 2.5
        assert ServerError(429, {}, {"retry-after": "-4"}).retry_after() == 0.0

    def test_non_busy_server_error_propagates_immediately(self):
        transport = FakeTransport([ServerError(400, {"error": "bad"}, {})])
        with pytest.raises(ServerError):
            _run(transport)

    def test_stream_ending_without_done_counts_as_disconnect(self):
        transport = FakeTransport([
            [_ev("accepted"), _ev("queued", 1)],  # closes cleanly, no done
            [_ev("accepted", resumed=True), _ev("done", 2, ok=True)],
        ])
        events, delays = _run(transport)
        assert delays == [0.25]
        assert transport.requests[1]["after_seq"] == 1
        assert events[-1]["event"] == "done"

    def test_explicit_resume_request_streams_from_given_seq(self):
        resume = {"kind": "resume", "job": JOB, "after_seq": 2}
        transport = FakeTransport([
            [_ev("accepted", resumed=True), _ev("result", 3), Drop()],
            [_ev("accepted", resumed=True), _ev("done", 4, ok=True)],
        ])
        sleep = FakeSleep()
        events = list(
            stream_submit_resilient(
                "http://fake", resume, sleep=sleep, transport=transport
            )
        )
        assert transport.requests[0]["after_seq"] == 2
        assert transport.requests[1]["after_seq"] == 3
        assert [e["seq"] for e in events if "seq" in e] == [3, 4]

    def test_events_without_seq_pass_through(self):
        transport = FakeTransport([
            [_ev("accepted"), _ev("queued", 1), _ev("heartbeat", last_seq=1),
             _ev("heartbeat", last_seq=1), _ev("done", 2, ok=True)],
        ])
        events, delays = _run(transport)
        assert delays == []
        assert [e["event"] for e in events].count("heartbeat") == 2


def _redirect(port):
    return ServerError(
        307,
        {"event": "redirect", "location": f"http://127.0.0.1:{port}/submit"},
        {"location": f"http://127.0.0.1:{port}/submit"},
    )


class TestRedirectSchedule:
    """Cluster redirect handling, pinned with the same scripted rig."""

    def test_redirect_followed_and_request_repeated_at_target(self):
        transport = FakeTransport([
            _redirect(9001),
            [_ev("accepted", coalesced=False), _ev("done", 1, ok=True)],
        ])
        events, delays = _run(transport)
        assert delays == [], "the first redirect hop is free"
        assert transport.urls == ["http://fake", "http://127.0.0.1:9001"]
        # A 307 repeats the *original* request at the new base, not a
        # resume (no job id was ever assigned).
        assert transport.requests[1] == SUBMIT
        assert events[-1]["ok"] is True

    def test_takeover_mid_stream_falls_back_to_origin_and_resumes(self):
        """redirect -> owning shard dies mid-stream -> client re-resolves
        via its origin URL and resumes with the last seq it saw."""
        transport = FakeTransport([
            _redirect(9001),
            [_ev("accepted"), _ev("queued", 1), _ev("started", 2),
             Drop("shard A killed")],
            [_ev("accepted", resumed=True, adopted=True), _ev("result", 3),
             _ev("done", 4, ok=True)],
        ])
        events, delays = _run(transport)
        assert transport.urls == [
            "http://fake", "http://127.0.0.1:9001", "http://fake",
        ], "after the redirect target dies the client returns to origin"
        assert transport.requests[2] == {
            "kind": "resume", "job": JOB, "after_seq": 2, "tenant": "t",
        }
        assert delays == [0.25]
        assert [e["event"] for e in events][-1] == "done"

    def test_seq_dedup_across_shards(self):
        """A takeover replays journaled seqs from the new shard; the
        client must still observe each seq exactly once."""
        transport = FakeTransport([
            _redirect(9001),
            [_ev("accepted"), _ev("queued", 1), _ev("started", 2), Drop()],
            # The surviving shard replays 1..2 from the journal before
            # the continuation events.
            [_ev("accepted", resumed=True), _ev("queued", 1),
             _ev("started", 2), _ev("result", 3), _ev("done", 4, ok=True)],
        ])
        events, _ = _run(transport)
        assert [e["seq"] for e in events if "seq" in e] == [1, 2, 3, 4]

    def test_redirect_ping_pong_bounded_by_retry_budget(self):
        transport = FakeTransport(
            [_redirect(9001), _redirect(9002)] * 3
        )
        sleep = FakeSleep()
        with pytest.raises(BusyError):
            list(
                stream_submit_resilient(
                    "http://fake", SUBMIT, sleep=sleep, transport=transport,
                    retry_budget_s=0.12, redirect_delay_s=0.05,
                )
            )
        # Hop 1 is free; hops 2 and 3 charge 0.05 each (0.10 spent);
        # hop 4 would overrun the 0.12 budget and raises instead.
        assert sleep.delays == [0.05, 0.05]

    def test_redirect_without_location_propagates(self):
        transport = FakeTransport([ServerError(307, {"event": "redirect"}, {})])
        with pytest.raises(ServerError) as info:
            _run(transport)
        assert info.value.status == 307
