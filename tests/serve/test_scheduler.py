"""TaskScheduler: the extracted execution core behind run_sweep."""

from __future__ import annotations

import pytest

from repro.experiments import harness
from repro.serve.scheduler import TaskScheduler


def _tasks():
    return [
        harness.speedup_task("array-insert", 2.0),
        harness.speedup_task("array-find", 2.0),
    ]


class TestSchedulerRunSweep:
    def test_matches_harness_run_sweep(self, tmp_path):
        """The CLI path and a directly-driven scheduler agree exactly."""
        settings = harness.HarnessSettings(
            use_cache=True, cache_dir=str(tmp_path / "a")
        )
        via_harness = harness.run_sweep(_tasks(), settings=settings)

        direct_settings = harness.HarnessSettings(
            use_cache=True, cache_dir=str(tmp_path / "b")
        )
        scheduler = TaskScheduler(
            direct_settings,
            cache=harness.ResultCache(direct_settings.resolve_cache_dir()),
        )
        direct = scheduler.run_sweep(_tasks())

        assert [r.values for r in via_harness] == [r.values for r in direct]
        assert via_harness.stats.misses == direct.stats.misses == 2

    def test_second_run_hits_cache(self, tmp_path):
        settings = harness.HarnessSettings(cache_dir=str(tmp_path))
        cache = harness.ResultCache(settings.resolve_cache_dir())
        first = TaskScheduler(settings, cache=cache).run_sweep(_tasks())
        second = TaskScheduler(settings, cache=cache).run_sweep(_tasks())
        assert first.stats.hits == 0 and first.stats.misses == 2
        assert second.stats.hits == 2 and second.stats.misses == 0
        assert [r.values for r in first] == [r.values for r in second]

    def test_duplicates_fold_to_one_execution(self, tmp_path):
        task = harness.speedup_task("array-insert", 2.0)
        settings = harness.HarnessSettings(cache_dir=str(tmp_path))
        outcome = TaskScheduler(settings).run_sweep([task, task, task])
        assert outcome.stats.tasks == 3
        assert outcome.stats.misses == 1
        assert outcome[0] is outcome[1] is outcome[2]

    def test_on_task_done_fires_for_hits_and_misses(self, tmp_path):
        settings = harness.HarnessSettings(cache_dir=str(tmp_path))
        cache = harness.ResultCache(settings.resolve_cache_dir())
        seen = []
        scheduler = TaskScheduler(
            settings, cache=cache, on_task_done=seen.append
        )
        scheduler.run_sweep(_tasks())
        assert len(seen) == 2 and all(not r.cached for r in seen)

        seen.clear()
        TaskScheduler(settings, cache=cache, on_task_done=seen.append).run_sweep(
            _tasks()
        )
        assert len(seen) == 2 and all(r.cached for r in seen)

    def test_broken_observer_does_not_break_sweep(self, tmp_path):
        settings = harness.HarnessSettings(cache_dir=str(tmp_path))

        def bad_observer(result):
            raise RuntimeError("observer bug")

        outcome = TaskScheduler(settings, on_task_done=bad_observer).run_sweep(
            _tasks()
        )
        assert outcome.complete


class TestUniqueExecutorSeam:
    def test_unique_executor_receives_distinct_uncached_tasks(self, tmp_path):
        calls = []

        def spy(tasks, scheduler):
            calls.append(list(tasks))
            return scheduler.execute_distinct(tasks)

        task = harness.speedup_task("array-insert", 2.0)
        settings = harness.HarnessSettings(cache_dir=str(tmp_path))
        outcome = TaskScheduler(settings, unique_executor=spy).run_sweep(
            [task, task]
        )
        assert outcome.complete
        assert calls == [[task]]  # duplicates folded before the seam

    def test_coalesce_scope_routes_harness_sweeps(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        calls = []

        def spy(tasks, scheduler):
            calls.append(len(tasks))
            return scheduler.execute_distinct(tasks)

        with harness.coalesce_scope(spy):
            outcome = harness.run_sweep(_tasks())
        assert outcome.complete and calls == [2]

    def test_progress_scope_routes_harness_sweeps(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        seen = []
        with harness.progress_scope(seen.append):
            harness.run_sweep(_tasks())
        assert len(seen) == 2

    def test_settings_scope_overrides_are_context_local(self, tmp_path):
        override = harness.HarnessSettings(
            jobs=7, cache_dir=str(tmp_path), retries=9
        )
        with harness.settings_scope(override):
            inside = harness.current_settings()
            assert inside.jobs == 7 and inside.retries == 9
        after = harness.current_settings()
        assert after.jobs != 7

    def test_empty_sweep(self, tmp_path):
        settings = harness.HarnessSettings(cache_dir=str(tmp_path))
        outcome = TaskScheduler(settings).run_sweep([])
        assert len(outcome) == 0 and outcome.complete


@pytest.mark.parametrize("mode", ["speedup", "constants"])
def test_results_are_cache_key_stable(tmp_path, mode):
    """Scheduler caching keys off SweepTask.key(), same as before."""
    make = harness.speedup_task if mode == "speedup" else harness.constants_task
    task = make("array-insert", 2.0)
    settings = harness.HarnessSettings(cache_dir=str(tmp_path))
    cache = harness.ResultCache(settings.resolve_cache_dir())
    TaskScheduler(settings, cache=cache).run_sweep([task])
    assert cache.load(make("array-insert", 2.0)) is not None
