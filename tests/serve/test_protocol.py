"""Wire-format unit tests: parsing, validation, coalesce keys, framing."""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.experiments import harness
from repro.serve import protocol


def _parse(payload):
    return protocol.parse_submit(payload)


class TestParseSubmit:
    def test_app_request_normalizes(self):
        request = _parse(
            {"kind": "app", "app": "array-insert", "pages": 4, "tenant": "t1"}
        )
        assert request.kind == "app" and request.tenant == "t1"
        assert request.spec["app"] == "array-insert"
        assert request.spec["pages"] == 4.0
        assert request.spec["mode"] == "speedup"

    def test_rejects_bad_kind(self):
        with pytest.raises(protocol.ProtocolError, match="kind"):
            _parse({"kind": "nonsense"})

    def test_rejects_non_object_body(self):
        with pytest.raises(protocol.ProtocolError, match="JSON object"):
            _parse([1, 2, 3])

    def test_rejects_unknown_app(self):
        with pytest.raises(protocol.ProtocolError, match="unknown app"):
            _parse({"kind": "app", "app": "no-such-app"})

    def test_rejects_bad_mode_and_pages(self):
        with pytest.raises(protocol.ProtocolError, match="mode"):
            _parse({"kind": "app", "app": "array-insert", "mode": "turbo"})
        with pytest.raises(protocol.ProtocolError, match="positive"):
            _parse({"kind": "app", "app": "array-insert", "pages": -2})

    def test_rejects_bad_tenant(self):
        with pytest.raises(protocol.ProtocolError, match="tenant"):
            _parse({"kind": "app", "app": "array-insert", "tenant": ""})
        with pytest.raises(protocol.ProtocolError, match="tenant"):
            _parse({"kind": "app", "app": "array-insert", "tenant": "x" * 65})

    def test_tasks_request_bounds(self):
        with pytest.raises(protocol.ProtocolError, match="non-empty"):
            _parse({"kind": "tasks", "tasks": []})
        too_many = [{"app": "array-insert"}] * (
            protocol.MAX_TASKS_PER_REQUEST + 1
        )
        with pytest.raises(protocol.ProtocolError, match="too many tasks"):
            _parse({"kind": "tasks", "tasks": too_many})

    def test_tasks_error_names_offending_index(self):
        with pytest.raises(protocol.ProtocolError, match=r"tasks\[1\]"):
            _parse(
                {
                    "kind": "tasks",
                    "tasks": [{"app": "array-insert"}, {"app": "bogus"}],
                }
            )

    def test_experiment_aliases(self):
        assert _parse({"kind": "experiment", "name": "fig3"}).spec["name"] == (
            "figure-3"
        )
        assert _parse({"kind": "experiment", "name": "table4"}).spec[
            "name"
        ] == "table-4"
        assert _parse({"kind": "experiment", "name": "figure-3"}).spec[
            "name"
        ] == "figure-3"
        with pytest.raises(protocol.ProtocolError, match="unknown experiment"):
            _parse({"kind": "experiment", "name": "figure-99"})

    def test_fuzz_requires_bounded_cases(self):
        with pytest.raises(protocol.ProtocolError, match="max_cases"):
            _parse({"kind": "fuzz"})
        with pytest.raises(protocol.ProtocolError, match="max_cases"):
            _parse({"kind": "fuzz", "max_cases": 0})
        with pytest.raises(protocol.ProtocolError, match="max_cases"):
            _parse({"kind": "fuzz", "max_cases": protocol.MAX_FUZZ_CASES + 1})
        request = _parse({"kind": "fuzz", "max_cases": 10, "seed": 3})
        assert request.spec == {
            "seed": 3,
            "max_cases": 10,
            "tolerance_scale": 1.0,
        }

    def test_fuzz_rejects_unknown_apps(self):
        with pytest.raises(protocol.ProtocolError, match="fuzz apps"):
            _parse({"kind": "fuzz", "max_cases": 5, "apps": ["bogus"]})


class TestCoalesceKey:
    def test_tenant_independent(self):
        a = _parse({"kind": "app", "app": "array-insert", "tenant": "alice"})
        b = _parse({"kind": "app", "app": "array-insert", "tenant": "bob"})
        assert a.coalesce_key() == b.coalesce_key()

    def test_spec_sensitive(self):
        a = _parse({"kind": "app", "app": "array-insert", "pages": 4})
        b = _parse({"kind": "app", "app": "array-insert", "pages": 8})
        assert a.coalesce_key() != b.coalesce_key()

    def test_kind_sensitive(self):
        a = _parse({"kind": "experiment", "name": "fig3"})
        b = _parse({"kind": "experiment", "name": "fig3", "quick": True})
        assert a.coalesce_key() != b.coalesce_key()

    def test_default_fields_do_not_change_the_key(self):
        explicit = _parse(
            {"kind": "app", "app": "array-insert", "mode": "speedup",
             "pages": 8.0, "seed": 0}
        )
        implicit = _parse({"kind": "app", "app": "array-insert"})
        assert explicit.coalesce_key() == implicit.coalesce_key()


class TestBuildTasks:
    def test_app_roundtrip(self):
        request = _parse(
            {"kind": "app", "app": "array-insert", "pages": 4, "seed": 7}
        )
        (task,) = protocol.build_tasks(request)
        assert task == harness.speedup_task("array-insert", 4.0, seed=7)

    def test_constants_mode(self):
        request = _parse(
            {"kind": "app", "app": "array-insert", "mode": "constants"}
        )
        (task,) = protocol.build_tasks(request)
        assert task.mode == "constants"

    def test_tasks_order_preserved(self):
        request = _parse(
            {
                "kind": "tasks",
                "tasks": [
                    {"app": "array-find", "pages": 2},
                    {"app": "array-insert", "pages": 4},
                ],
            }
        )
        tasks = protocol.build_tasks(request)
        assert [t.app_name for t in tasks] == ["array-find", "array-insert"]


class TestHttpPlumbing:
    def _read(self, raw: bytes, **kwargs):
        async def go():
            reader = asyncio.StreamReader()
            reader.feed_data(raw)
            reader.feed_eof()
            return await protocol.read_request(reader, **kwargs)

        return asyncio.run(go())

    def test_parses_post_with_body(self):
        body = b'{"kind": "app"}'
        raw = (
            b"POST /submit HTTP/1.1\r\n"
            b"Host: x\r\nContent-Length: %d\r\n"
            b"Accept: text/event-stream\r\n\r\n" % len(body)
        ) + body
        method, target, headers, got = self._read(raw)
        assert method == "POST" and target == "/submit"
        assert headers["accept"] == "text/event-stream"
        assert got == body

    def test_parses_get_without_body(self):
        method, target, headers, body = self._read(
            b"GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n"
        )
        assert method == "GET" and target == "/metrics" and body == b""

    def test_rejects_malformed_request_line(self):
        with pytest.raises(protocol.ProtocolError, match="request line"):
            self._read(b"NOT-HTTP\r\n\r\n")

    def test_rejects_oversized_body(self):
        with pytest.raises(protocol.ProtocolError, match="too large"):
            self._read(
                b"POST / HTTP/1.1\r\nContent-Length: 100\r\n\r\n" + b"x" * 100,
                max_body=10,
            )

    def test_immediate_eof_is_connection_reset(self):
        with pytest.raises(ConnectionResetError):
            self._read(b"")

    def test_json_response_framing(self):
        raw = protocol.json_response(429, {"error": "queue full"})
        head, _, body = raw.partition(b"\r\n\r\n")
        lines = head.decode().split("\r\n")
        assert lines[0] == "HTTP/1.1 429 Too Many Requests"
        assert f"Content-Length: {len(body)}" in lines
        assert json.loads(body) == {"error": "queue full"}

    def test_event_framing(self):
        event = {"event": "done", "ok": True}
        ndjson = protocol.encode_event(event)
        assert ndjson.endswith(b"\n") and json.loads(ndjson) == event
        sse = protocol.encode_event(event, sse=True)
        assert sse.startswith(b"data: ") and sse.endswith(b"\n\n")
        assert json.loads(sse[len(b"data: "):]) == event
