"""Durability tests for the serve job journal.

The journal's contract is *every prefix is a valid journal*: a crash
can tear at most the final record, and recovery must decode the
intact prefix, truncate the tear, and keep appending.  These tests
pin that down byte-by-byte — a property round-trip under hypothesis,
truncation at **every** offset of the final record, checksum-failure
tails, two-writer exclusion, and the cache-integration surface
(``stats`` / ``prune``).
"""

from __future__ import annotations

import json
import os

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.experiments import harness
from repro.serve import journal
from repro.serve.journal import (
    JobJournal,
    JournalError,
    JournalStore,
    decode_records,
    encode_record,
    job_summary,
    valid_job_id,
)

# JSON-safe payload values (no NaN: it round-trips as a float but not
# through equality, and the journal only ever stores JSON-clean dicts).
_scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2**53), max_value=2**53),
    st.floats(allow_nan=False, allow_infinity=False, width=32),
    st.text(max_size=40),
)
_payloads = st.dictionaries(
    st.text(min_size=1, max_size=12),
    st.one_of(_scalars, st.lists(_scalars, max_size=4)),
    max_size=6,
)


class TestFraming:
    @settings(max_examples=60, deadline=None)
    @given(st.lists(_payloads, max_size=8))
    def test_round_trip_any_record_list(self, payloads):
        blob = b"".join(encode_record(p) for p in payloads)
        records, clean = decode_records(blob)
        assert clean == len(blob)
        assert records == json.loads(json.dumps(payloads))

    @settings(max_examples=40, deadline=None)
    @given(st.lists(_payloads, min_size=1, max_size=4), st.data())
    def test_any_truncation_yields_a_valid_prefix(self, payloads, data):
        blob = b"".join(encode_record(p) for p in payloads)
        cut = data.draw(st.integers(min_value=0, max_value=len(blob)))
        records, clean = decode_records(blob[:cut])
        assert clean <= cut
        # The recovered prefix must itself decode identically: the
        # invariant recovery relies on to truncate-and-append in place.
        again, clean2 = decode_records(blob[:clean])
        assert again == records and clean2 == clean

    def test_truncation_at_every_byte_of_the_final_record(self):
        head = [{"type": "request", "job": "a" * 16}, {"type": "event", "seq": 1}]
        tail = {"type": "event", "seq": 2, "event": {"event": "done", "ok": True}}
        prefix = b"".join(encode_record(p) for p in head)
        frame = encode_record(tail)
        for cut in range(len(frame)):  # every torn length of the last record
            records, clean = decode_records(prefix + frame[:cut])
            assert records == head, f"cut={cut}"
            assert clean == len(prefix), f"cut={cut}"
        records, clean = decode_records(prefix + frame)
        assert records == head + [tail]

    def test_corrupt_tail_byte_fails_checksum_and_is_dropped(self):
        good = encode_record({"type": "event", "seq": 1})
        bad = bytearray(encode_record({"type": "event", "seq": 2}))
        bad[-3] ^= 0xFF  # flip one body byte; header still well-formed
        records, clean = decode_records(good + bytes(bad))
        assert records == [{"type": "event", "seq": 1}]
        assert clean == len(good)

    def test_oversized_record_rejected_on_encode(self):
        with pytest.raises(JournalError):
            encode_record({"blob": "x" * (journal.MAX_RECORD_BYTES + 1)})

    def test_absurd_length_field_stops_decode(self):
        frame = b"%08x %08x " % (journal.MAX_RECORD_BYTES + 1, 0) + b"{}\n"
        assert decode_records(frame) == ([], 0)


class TestJobIds:
    @pytest.mark.parametrize(
        "job_id", ["0123456789abcdef-00aa11bb", "a" * 8, "f" * 64 + "-0"]
    )
    def test_valid(self, job_id):
        assert valid_job_id(job_id)

    @pytest.mark.parametrize(
        "job_id",
        ["", "short", "UPPERCASE0", "../../../etc/passwd", "a" * 16 + "-",
         "a b c d e f 0 1", "a" * 65, "0" * 16 + "-" + "0" * 17],
    )
    def test_invalid(self, job_id):
        assert not valid_job_id(job_id)

    def test_path_for_rejects_traversal(self, tmp_path):
        store = JournalStore(tmp_path)
        with pytest.raises(JournalError):
            store.path_for("../escape")


class TestStore:
    def _write(self, store, job_id, records):
        jnl = store.create(job_id)
        for record in records:
            jnl.append(record)
        jnl.close()

    def test_create_is_exclusive_across_two_writers(self, tmp_path):
        store_a = JournalStore(tmp_path)
        store_b = JournalStore(tmp_path)  # second process, same directory
        jnl = store_a.create("a" * 16)
        try:
            with pytest.raises(FileExistsError):
                store_b.create("a" * 16)
        finally:
            jnl.close()

    def test_append_after_close_is_a_noop(self, tmp_path):
        store = JournalStore(tmp_path)
        jnl = store.create("b" * 16)
        jnl.append({"type": "event", "seq": 1})
        jnl.close()
        jnl.append({"type": "event", "seq": 2})
        assert jnl.closed
        assert [r["seq"] for r in store.read("b" * 16)] == [1]

    def test_open_existing_truncates_torn_tail_then_appends(self, tmp_path):
        store = JournalStore(tmp_path)
        job_id = "c" * 16
        self._write(store, job_id, [{"type": "event", "seq": n} for n in (1, 2)])
        path = store.path_for(job_id)
        frame = encode_record({"type": "event", "seq": 3})
        with open(path, "ab") as fh:
            fh.write(frame[: len(frame) // 2])  # crash mid-append

        jnl, records = store.open_existing(job_id)
        assert [r["seq"] for r in records] == [1, 2]
        jnl.append({"type": "event", "seq": 3, "event": {"event": "done"}})
        jnl.close()
        records = store.read(job_id)
        assert [r["seq"] for r in records] == [1, 2, 3]
        data = path.read_bytes()
        _, clean = decode_records(data)
        assert clean == len(data), "re-opened journal must end cleanly"

    def test_read_missing_is_empty(self, tmp_path):
        assert JournalStore(tmp_path).read("d" * 16) == []

    def test_scan_orders_oldest_first(self, tmp_path):
        store = JournalStore(tmp_path)
        for n, job_id in enumerate(["1" * 16, "2" * 16, "3" * 16]):
            self._write(store, job_id, [{"type": "request", "job": job_id}])
            os.utime(store.path_for(job_id), (1000.0 + n, 1000.0 + n))
        assert [job_id for job_id, _ in store.scan()] == ["1" * 16, "2" * 16, "3" * 16]

    def test_summary_and_stats(self, tmp_path):
        store = JournalStore(tmp_path)
        done = [
            {"type": "request", "job": "a" * 16, "kind": "app", "tenant": "t",
             "key": "k", "spec": {"x": 1}, "created_at": 1.0},
            {"type": "event", "seq": 1, "event": {"event": "queued"}},
            {"type": "event", "seq": 2, "event": {"event": "done", "ok": True}},
        ]
        self._write(store, "a" * 16, done)
        self._write(store, "b" * 16, done[:2])  # incomplete

        summary = job_summary(store.read("a" * 16))
        assert summary["done"] is True and summary["ok"] is True
        assert summary["seq"] == 2 and summary["events"] == 2
        assert summary["kind"] == "app" and summary["spec"] == {"x": 1}
        assert job_summary(store.read("b" * 16))["done"] is False

        stats = store.stats()
        assert stats["journals"] == 2
        assert stats["completed"] == 1 and stats["recoverable"] == 1
        assert stats["journal_bytes"] > 0

    def test_prune_sweeps_completed_and_tmp_but_never_recoverable(self, tmp_path):
        store = JournalStore(tmp_path)
        done = [{"type": "event", "seq": 1, "event": {"event": "done", "ok": True}}]
        self._write(store, "a" * 16, done)
        self._write(store, "b" * 16, [{"type": "event", "seq": 1}])  # incomplete
        (tmp_path / "orphan.tmp123").write_bytes(b"litter")
        for name in (store.path_for("a" * 16), store.path_for("b" * 16),
                     tmp_path / "orphan.tmp123"):
            os.utime(name, (1.0, 1.0))  # ancient

        removed = store.prune(days=30)
        assert removed == {"journals": 1, "tmp": 1, "leased": 0}
        assert store.job_ids() == ["b" * 16], "incomplete journals are kept"
        assert not (tmp_path / "orphan.tmp123").exists()

    def test_prune_keeps_recent_completed_journals(self, tmp_path):
        store = JournalStore(tmp_path)
        self._write(
            store, "a" * 16,
            [{"type": "event", "seq": 1, "event": {"event": "done", "ok": True}}],
        )
        assert store.prune(days=30) == {"journals": 0, "tmp": 0, "leased": 0}
        assert store.job_ids() == ["a" * 16]

    def test_prune_rejects_negative_days(self, tmp_path):
        with pytest.raises(ValueError):
            JournalStore(tmp_path).prune(days=-1)


class TestResultCacheIntegration:
    def test_cache_stats_and_prune_cover_journals(self, tmp_path):
        cache = harness.ResultCache(tmp_path / "cache")
        store = cache.journal_store()
        jnl = store.create("e" * 16)
        jnl.append({"type": "event", "seq": 1, "event": {"event": "done", "ok": True}})
        jnl.close()
        os.utime(store.path_for("e" * 16), (1.0, 1.0))

        assert cache.stats()["jobs"]["journals"] == 1
        assert cache.prune(days=7) == 0  # no cache entries, only journals
        assert cache.last_journal_prune == {"journals": 1, "tmp": 0, "leased": 0}
        assert store.job_ids() == []
