"""Retry/backoff/timeout schedules, asserted exactly under a fake clock.

The chaos tests in ``test_harness_resilience.py`` prove the machinery
survives real crashes and hangs; these tests pin down the *schedule*:
which delays are slept, which timeouts are applied to which waits, and
how pools are rebuilt after breaks — deterministically, with no real
sleeping, real pools, or real time.
"""

from __future__ import annotations

import pytest

from repro.experiments import harness
from repro.serve.scheduler import (
    MAX_BACKOFF_S,
    SystemClock,
    TaskScheduler,
)
from concurrent.futures import TimeoutError as FutureTimeoutError
from concurrent.futures.process import BrokenProcessPool


def _task(pages: float = 2.0) -> harness.SweepTask:
    return harness.speedup_task("array-insert", pages)


class FakeClock(SystemClock):
    """Scripted time: records sleeps and future waits, never blocks.

    ``script`` maps a task key to the ordered outcomes of its pooled
    waits — a ``(values, wall_s)`` tuple to return or an exception
    instance to raise.
    """

    def __init__(self, script=None):
        self.sleeps = []
        self.waits = []
        self.script = dict(script or {})
        self._now = 0.0

    def monotonic(self) -> float:
        self._now += 1.0
        return self._now

    def sleep(self, seconds: float) -> None:
        self.sleeps.append(seconds)

    def wait_future(self, future, timeout):
        self.waits.append(timeout)
        outcome = self.script[future.task.key()].pop(0)
        if isinstance(outcome, BaseException):
            raise outcome
        return outcome


class FakeProc:
    def __init__(self, log):
        self.log = log

    def terminate(self):
        self.log.append("terminate")


class FakePool:
    """Stands in for ProcessPoolExecutor; futures only carry the task."""

    class Future:
        def __init__(self, task):
            self.task = task
            self.cancelled = False

        def cancel(self):
            self.cancelled = True

    def __init__(self, max_workers, log):
        self.max_workers = max_workers
        self.log = log
        self._processes = {0: FakeProc(log)}
        log.append(("pool", max_workers))

    def submit(self, fn, task):
        return self.Future(task)

    def shutdown(self, wait=True, cancel_futures=False):
        self.log.append(("shutdown", wait))


@pytest.fixture
def pool_log():
    return []


@pytest.fixture
def pool_factory(pool_log):
    return lambda max_workers: FakePool(max_workers, pool_log)


class TestSerialBackoffSchedule:
    def test_exact_exponential_delays(self, monkeypatch):
        """retries=3, base 0.25s: the slept schedule is exactly
        [0.25, 0.5, 1.0] — no sleep before the first attempt."""
        attempts = []

        def always_raises(task, trace_summary=False):
            attempts.append(task)
            raise RuntimeError("persistent failure")

        monkeypatch.setattr(harness, "_timed_execute", always_raises)
        clock = FakeClock()
        settings = harness.HarnessSettings(
            jobs=1, use_cache=False, retries=3, retry_backoff_s=0.25
        )
        result = TaskScheduler(settings, clock=clock)._execute_with_retry(
            _task()
        )
        assert clock.sleeps == [0.25, 0.5, 1.0]
        assert len(attempts) == 4
        assert result.attempts == 4
        assert result.error == "RuntimeError: persistent failure"

    def test_success_after_one_retry_sleeps_once(self, monkeypatch):
        calls = {"n": 0}

        def fails_once(task, trace_summary=False):
            calls["n"] += 1
            if calls["n"] == 1:
                raise RuntimeError("transient")
            return harness.TaskResult(task=task, values={"v": 1.0}, wall_s=0.0)

        monkeypatch.setattr(harness, "_timed_execute", fails_once)
        clock = FakeClock()
        settings = harness.HarnessSettings(
            jobs=1, use_cache=False, retries=2, retry_backoff_s=0.25
        )
        result = TaskScheduler(settings, clock=clock)._execute_with_retry(
            _task()
        )
        assert clock.sleeps == [0.25]
        assert result.ok and result.attempts == 2

    def test_backoff_capped_at_thirty_seconds(self, monkeypatch):
        def always_raises(task, trace_summary=False):
            raise RuntimeError("nope")

        monkeypatch.setattr(harness, "_timed_execute", always_raises)
        clock = FakeClock()
        settings = harness.HarnessSettings(
            jobs=1, use_cache=False, retries=3, retry_backoff_s=20.0
        )
        TaskScheduler(settings, clock=clock)._execute_with_retry(_task())
        # 20 * 2^round = 20, 40, 80 -> capped to 20, 30, 30.
        assert clock.sleeps == [20.0, MAX_BACKOFF_S, MAX_BACKOFF_S]

    def test_zero_backoff_never_sleeps(self, monkeypatch):
        def always_raises(task, trace_summary=False):
            raise RuntimeError("nope")

        monkeypatch.setattr(harness, "_timed_execute", always_raises)
        clock = FakeClock()
        settings = harness.HarnessSettings(
            jobs=1, use_cache=False, retries=3, retry_backoff_s=0.0
        )
        TaskScheduler(settings, clock=clock)._execute_with_retry(_task())
        assert clock.sleeps == []


class TestPooledTimeoutSchedule:
    def test_timeout_preempts_then_retry_succeeds(
        self, pool_factory, pool_log
    ):
        """A hung task: its wait times out at task_timeout_s, the hung
        pool's workers are terminated (shutdown without join), one
        backoff is slept, and the retry succeeds on a fresh pool."""
        t1, t2 = _task(2.0), _task(4.0)
        clock = FakeClock(
            script={
                t1.key(): [FutureTimeoutError(), ({"v": 1.0}, 0.1)],
                t2.key(): [({"v": 2.0}, 0.2)],
            }
        )
        settings = harness.HarnessSettings(
            jobs=2,
            use_cache=False,
            retries=2,
            retry_backoff_s=0.25,
            task_timeout_s=5.0,
        )
        scheduler = TaskScheduler(
            settings, clock=clock, pool_factory=pool_factory
        )
        results = scheduler.execute_distinct([t1, t2])

        # Every pooled wait carried the configured deadline.
        assert clock.waits == [5.0, 5.0, 5.0]
        assert clock.sleeps == [0.25]
        assert [r.values for r in results] == [{"v": 1.0}, {"v": 2.0}]
        assert results[0].attempts == 2 and results[0].ok
        assert results[1].attempts == 1
        # Round 1: one shared 2-worker pool, terminated (hung) and shut
        # down without joining.  Round 2: a fresh 1-worker pool for the
        # single remaining task, joined normally.
        assert pool_log == [
            ("pool", 2),
            "terminate",
            ("shutdown", False),
            ("pool", 1),
            ("shutdown", True),
        ]

    def test_timeouts_exhaust_retries(self, pool_factory):
        t1, t2 = _task(2.0), _task(4.0)
        clock = FakeClock(
            script={
                t1.key(): [FutureTimeoutError()] * 3,
                t2.key(): [({"v": 2.0}, 0.2)],
            }
        )
        settings = harness.HarnessSettings(
            jobs=2,
            use_cache=False,
            retries=2,
            retry_backoff_s=0.25,
            task_timeout_s=2.5,
        )
        results = TaskScheduler(
            settings, clock=clock, pool_factory=pool_factory
        ).execute_distinct([t1, t2])
        assert clock.sleeps == [0.25, 0.5]
        assert results[0].error == "timed out after 2.5s"
        assert results[0].attempts == 3
        assert results[1].ok

    def test_broken_pool_isolates_tasks(self, pool_factory, pool_log):
        """After a pool break every retried task gets a private
        single-worker pool so a persistent crasher cannot take
        bystanders down with it."""
        t1, t2 = _task(2.0), _task(4.0)
        clock = FakeClock(
            script={
                t1.key(): [BrokenProcessPool("died"), ({"v": 1.0}, 0.1)],
                t2.key(): [BrokenProcessPool("died"), ({"v": 2.0}, 0.2)],
            }
        )
        settings = harness.HarnessSettings(
            jobs=2, use_cache=False, retries=2, retry_backoff_s=0.25
        )
        results = TaskScheduler(
            settings, clock=clock, pool_factory=pool_factory
        ).execute_distinct([t1, t2])
        assert [r.values for r in results] == [{"v": 1.0}, {"v": 2.0}]
        assert [r.attempts for r in results] == [2, 2]
        assert clock.sleeps == [0.25]
        # No timeout configured: waits are unbounded.
        assert clock.waits == [None] * 4
        pools = [entry for entry in pool_log if entry[0] == "pool"]
        assert pools == [("pool", 2), ("pool", 1), ("pool", 1)]

    def test_no_timeout_means_unbounded_waits(self, pool_factory):
        t1, t2 = _task(2.0), _task(4.0)
        clock = FakeClock(
            script={
                t1.key(): [({"v": 1.0}, 0.1)],
                t2.key(): [({"v": 2.0}, 0.2)],
            }
        )
        settings = harness.HarnessSettings(jobs=2, use_cache=False)
        results = TaskScheduler(
            settings, clock=clock, pool_factory=pool_factory
        ).execute_distinct([t1, t2])
        assert clock.waits == [None, None]
        assert clock.sleeps == []
        assert all(r.ok for r in results)
