"""SingleFlight: one computation per key, many waiters, exact counters."""

from __future__ import annotations

import threading
import time

from repro.experiments import harness
from repro.serve.scheduler import SingleFlight
from repro.trace.metrics import MetricsRegistry


def _task(pages: float = 4.0) -> harness.SweepTask:
    return harness.speedup_task("array-insert", pages)


class StubScheduler:
    """Counts execute_distinct calls; optionally blocks until released."""

    def __init__(self, gate: threading.Event = None, fail: bool = False):
        self.calls = []
        self.gate = gate
        self.fail = fail
        self._lock = threading.Lock()

    def execute_distinct(self, tasks):
        with self._lock:
            self.calls.append(list(tasks))
        if self.gate is not None:
            assert self.gate.wait(timeout=30)
        if self.fail:
            raise RuntimeError("computation exploded")
        return [
            harness.TaskResult(task=t, values={"v": t.n_pages}, wall_s=0.01)
            for t in tasks
        ]


def _registry():
    registry = MetricsRegistry()
    return registry, registry.namespace("tasks")


class TestSingleFlight:
    def test_single_caller_computes(self):
        registry, ns = _registry()
        flight = SingleFlight(metrics=ns)
        scheduler = StubScheduler()
        results = flight([_task()], scheduler)
        assert len(results) == 1 and results[0].values == {"v": 4.0}
        assert len(scheduler.calls) == 1
        assert registry.as_dict()["tasks.computed"] == 1
        assert flight.inflight_keys() == []

    def test_concurrent_same_key_computes_once(self):
        registry, ns = _registry()
        flight = SingleFlight(metrics=ns)
        release = threading.Event()
        scheduler = StubScheduler(gate=release)
        results = {}

        def worker(i):
            results[i] = flight([_task()], scheduler)

        threads = [
            threading.Thread(target=worker, args=(i,)) for i in range(4)
        ]
        for t in threads:
            t.start()
        # Every thread has either claimed the flight or registered as a
        # waiter once the counters sum to 4 (counted under the lock).
        deadline = time.monotonic() + 30
        while time.monotonic() < deadline:
            m = registry.as_dict()
            if m.get("tasks.computed", 0) + m.get("tasks.coalesce_hits", 0) == 4:
                break
            time.sleep(0.005)
        release.set()
        for t in threads:
            t.join(timeout=30)

        assert len(scheduler.calls) == 1, "exactly one underlying computation"
        metrics = registry.as_dict()
        assert metrics["tasks.computed"] == 1
        assert metrics["tasks.coalesce_hits"] == 3
        values = [results[i][0].values for i in range(4)]
        assert values == [{"v": 4.0}] * 4
        shared = results[0][0]
        assert all(results[i][0] is shared for i in range(4))
        assert flight.inflight_keys() == []

    def test_distinct_keys_do_not_coalesce(self):
        registry, ns = _registry()
        flight = SingleFlight(metrics=ns)
        scheduler = StubScheduler()
        results = flight([_task(2.0), _task(8.0)], scheduler)
        assert [r.values for r in results] == [{"v": 2.0}, {"v": 8.0}]
        assert registry.as_dict()["tasks.computed"] == 2
        assert registry.as_dict().get("tasks.coalesce_hits", 0) == 0

    def test_failed_computation_still_wakes_waiters(self):
        registry, ns = _registry()
        flight = SingleFlight(metrics=ns)
        release = threading.Event()
        owner = StubScheduler(gate=release, fail=True)
        waiter_scheduler = StubScheduler()
        owner_error = []
        waiter_result = []

        def run_owner():
            try:
                flight([_task()], owner)
            except RuntimeError as exc:
                owner_error.append(exc)

        def run_waiter():
            waiter_result.extend(flight([_task()], waiter_scheduler))

        t_owner = threading.Thread(target=run_owner)
        t_owner.start()
        deadline = time.monotonic() + 30
        while not owner.calls and time.monotonic() < deadline:
            time.sleep(0.005)
        t_waiter = threading.Thread(target=run_waiter)
        t_waiter.start()
        # Wait until the waiter registered (coalesce hit) or, having
        # arrived after unpublish, started its own computation.
        deadline = time.monotonic() + 30
        while time.monotonic() < deadline:
            hits = registry.as_dict().get("tasks.coalesce_hits", 0)
            if hits or waiter_scheduler.calls:
                break
            time.sleep(0.005)
        release.set()
        t_owner.join(timeout=30)
        t_waiter.join(timeout=30)

        assert owner_error, "the owning sweep sees its own exception"
        assert len(waiter_result) == 1
        result = waiter_result[0]
        # The waiter either coalesced onto the aborted flight (error
        # result) or arrived after unpublish and computed for itself.
        if waiter_scheduler.calls:
            assert result.ok
        else:
            assert result.error == "computation aborted before completing"
        assert flight.inflight_keys() == []

    def test_wait_timeout_produces_error_result(self):
        flight = SingleFlight(wait_timeout_s=0.05)
        release = threading.Event()
        owner = StubScheduler(gate=release)

        t_owner = threading.Thread(target=lambda: flight([_task()], owner))
        t_owner.start()
        deadline = time.monotonic() + 30
        while not owner.calls and time.monotonic() < deadline:
            time.sleep(0.005)

        waiter = StubScheduler()
        results = flight([_task()], waiter)
        assert results[0].error is not None
        assert "timed out waiting" in results[0].error
        release.set()
        t_owner.join(timeout=30)

    def test_mixed_fresh_and_waiting_keys(self):
        """One call can own some keys while waiting on others."""
        flight = SingleFlight()
        release = threading.Event()
        owner = StubScheduler(gate=release)

        t_owner = threading.Thread(target=lambda: flight([_task(2.0)], owner))
        t_owner.start()
        deadline = time.monotonic() + 30
        while not owner.calls and time.monotonic() < deadline:
            time.sleep(0.005)

        mixed_results = []
        mixed = StubScheduler()

        def run_mixed():
            mixed_results.extend(flight([_task(2.0), _task(8.0)], mixed))

        t_mixed = threading.Thread(target=run_mixed)
        t_mixed.start()
        deadline = time.monotonic() + 30
        while not mixed.calls and time.monotonic() < deadline:
            time.sleep(0.005)
        assert mixed.calls == [[_task(8.0)]]  # only the un-owned key
        release.set()
        t_owner.join(timeout=30)
        t_mixed.join(timeout=30)
        assert [r.values for r in mixed_results] == [{"v": 2.0}, {"v": 8.0}]
