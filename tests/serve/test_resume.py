"""End-to-end durability tests: resume, recovery, heartbeats, chaos.

Runs the real in-process server (``serve_factory``) against the real
client, exercising the PR 9 crash-recovery invariant at every layer
short of an actual SIGKILL (which ``repro.serve.resilience_smoke``
covers in a subprocess):

* a client that disconnects mid-stream resumes with ``after_seq`` and
  sees every remaining event exactly once, in order;
* a journal left incomplete by a dead server is re-enqueued on the
  next start and runs to completion;
* ``GET /jobs/<id>`` answers for live, retained, and journal-only jobs;
* heartbeats keep an idle stream alive and are never journaled;
* a chaos-dropped connection is survived by the resilient client.
"""

from __future__ import annotations

import json
import os
import threading
import time
from pathlib import Path

import pytest

from repro.faults import chaos
from repro.serve import client, protocol
from repro.serve.journal import JournalStore, job_summary
from tests.serve.test_server import gated_execute  # noqa: F401 (fixture)

APP_REQUEST = {"kind": "app", "app": "array-insert", "pages": 2.0, "tenant": "t"}


def _journal_store() -> JournalStore:
    return JournalStore(Path(os.environ["REPRO_CACHE_DIR"]) / "jobs")


def _wait_until(predicate, timeout=30.0, message="condition"):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(0.005)
    raise AssertionError(f"timed out waiting for {message}")


class TestResume:
    def test_disconnect_then_resume_completes_without_duplicates(
        self, serve_factory, gated_execute  # noqa: F811
    ):
        server = serve_factory()
        seen = []
        stream = client.stream_submit(server.base_url, APP_REQUEST, timeout=120)
        for event in stream:
            seen.append(event)
            if event["event"] == "started":
                stream.close()  # hang up mid-run
                break
        job_id = seen[0]["job"]
        last_seq = max(e["seq"] for e in seen if "seq" in e)
        assert last_seq >= 2  # queued + started

        gated_execute["release"].set()
        remainder = list(
            client.stream_submit(
                server.base_url,
                {"kind": "resume", "job": job_id, "after_seq": last_seq},
                timeout=120,
            )
        )
        accepted = remainder[0]
        assert accepted["event"] == "accepted"
        assert accepted["resumed"] is True and accepted["job"] == job_id
        seqs = [e["seq"] for e in remainder if "seq" in e]
        assert seqs == list(range(last_seq + 1, last_seq + 1 + len(seqs)))
        assert remainder[-1]["event"] == "done" and remainder[-1]["ok"] is True

        # The two halves stitch into one gapless sequence.
        all_seqs = [e["seq"] for e in seen + remainder if "seq" in e]
        assert all_seqs == list(range(1, len(all_seqs) + 1))

    def test_resume_finished_job_replays_full_stream(self, serve_factory):
        server = serve_factory()
        first = list(client.stream_submit(server.base_url, APP_REQUEST, timeout=120))
        job_id = first[0]["job"]

        replay = list(
            client.stream_submit(
                server.base_url,
                {"kind": "resume", "job": job_id, "after_seq": 0},
                timeout=120,
            )
        )
        assert replay[0]["resumed"] is True
        assert [e for e in replay[1:]] == [e for e in first[1:]], (
            "resume from 0 replays the identical journaled sequence"
        )

    def test_resume_unknown_job_is_404(self, serve_factory):
        server = serve_factory()
        with pytest.raises(client.ServerError) as info:
            list(
                client.stream_submit(
                    server.base_url,
                    {"kind": "resume", "job": "f" * 16 + "-00000000", "after_seq": 0},
                    timeout=30,
                )
            )
        assert info.value.status == 404

    def test_resume_journal_only_incomplete_job_reports_not_running(
        self, serve_factory
    ):
        store = _journal_store()
        jnl = store.create("9" * 16 + "-01234567")
        jnl.append({"type": "request", "job": "9" * 16 + "-01234567",
                    "kind": "app", "tenant": "t", "key": "k", "spec": {}})
        jnl.append({"type": "event", "seq": 1,
                    "event": {"event": "queued", "seq": 1}})
        jnl.close()
        server = serve_factory(use_journal=False)  # no recovery, journal stays dead

        # With journaling off the server can't see the file at all.
        with pytest.raises(client.ServerError) as info:
            list(
                client.stream_submit(
                    server.base_url,
                    {"kind": "resume", "job": "9" * 16 + "-01234567", "after_seq": 0},
                    timeout=30,
                )
            )
        assert info.value.status == 404

        # With it on, the job is known — recovered live or replayed
        # from disk — and the stream always reaches a done event.
        server2 = serve_factory()
        events = list(
            client.stream_submit(
                server2.base_url,
                {"kind": "resume", "job": "9" * 16 + "-01234567", "after_seq": 0},
                timeout=30,
            )
        )
        kinds = [e["event"] for e in events]
        assert kinds[0] == "accepted" and events[0].get("from_journal") in (True, None)
        assert kinds[-1] == "done"


class TestRecovery:
    def _plant_incomplete_journal(self):
        request = protocol.parse_submit(dict(APP_REQUEST))
        key = request.coalesce_key()
        job_id = f"{key[:16]}-deadbeef"
        store = _journal_store()
        jnl = store.create(job_id)
        jnl.append({"type": "request", "job": job_id, "key": key,
                    "kind": request.kind, "tenant": request.tenant,
                    "spec": request.spec, "created_at": 0.0})
        jnl.append({"type": "event", "seq": 1,
                    "event": {"event": "queued", "job": job_id, "seq": 1}})
        jnl.append({"type": "event", "seq": 2,
                    "event": {"event": "started", "job": job_id, "seq": 2}})
        jnl.close()
        return job_id, store

    def test_incomplete_journal_is_reenqueued_and_finishes(self, serve_factory):
        job_id, store = self._plant_incomplete_journal()
        server = serve_factory()
        assert server.server.recovered_jobs == 1

        _wait_until(
            lambda: job_summary(store.read(job_id))["done"],
            message="recovered job to finish",
        )
        summary = job_summary(store.read(job_id))
        assert summary["ok"] is True
        assert summary["seq"] > 2, "re-run seqs continue past the journaled max"

        events = list(
            client.stream_submit(
                server.base_url,
                {"kind": "resume", "job": job_id, "after_seq": 0},
                timeout=120,
            )
        )
        kinds = [e["event"] for e in events]
        assert kinds[0] == "accepted"
        assert "recovered" in kinds, "the restart is visible in the stream"
        seqs = [e["seq"] for e in events if "seq" in e]
        assert seqs == list(range(1, len(seqs) + 1)), "replay + re-run are gapless"
        assert events[-1]["event"] == "done" and events[-1]["ok"] is True
        assert server.metrics()["serve.recovered_jobs"] == 1

    def test_torn_tail_recovers_without_error(self, serve_factory):
        job_id, store = self._plant_incomplete_journal()
        path = store.path_for(job_id)
        with open(path, "ab") as fh:
            fh.write(b"\x00\x17garbage torn half-rec")  # crash litter

        server = serve_factory()
        assert server.server.recovered_jobs == 1
        _wait_until(
            lambda: job_summary(store.read(job_id))["done"],
            message="recovered job to finish",
        )
        assert job_summary(store.read(job_id))["ok"] is True


class TestJobStatus:
    def test_status_live_then_done_then_journal_only(
        self, serve_factory, gated_execute  # noqa: F811
    ):
        server = serve_factory()
        out = {}
        thread = threading.Thread(
            target=lambda: out.setdefault(
                "events",
                list(client.stream_submit(server.base_url, APP_REQUEST, timeout=120)),
            )
        )
        thread.start()
        assert gated_execute["started"].wait(timeout=30)
        # Find the job id while it is running.
        metrics_job = None
        _wait_until(lambda: bool(server.server.jobs_by_id), message="job registered")
        (metrics_job,) = list(server.server.jobs_by_id)
        running = client.get_json(server.base_url, f"/jobs/{metrics_job}")
        assert running["status"] == "running" and running["live"] is True

        gated_execute["release"].set()
        thread.join(timeout=60)
        done = client.get_json(server.base_url, f"/jobs/{metrics_job}")
        assert done["status"] == "done" and done["ok"] is True

    def test_status_falls_back_to_journal_and_rejects_bad_ids(self, serve_factory):
        store = _journal_store()
        jnl = store.create("7" * 16 + "-aa")
        jnl.append({"type": "request", "job": "7" * 16 + "-aa", "kind": "app",
                    "tenant": "t", "key": "k", "spec": {}})
        jnl.close()
        server = serve_factory(use_journal=False)  # job is NOT live on this server
        # use_journal=False also disables the disk fallback → 404.
        with pytest.raises(client.ServerError) as info:
            client.get_json(server.base_url, "/jobs/" + "7" * 16 + "-aa")
        assert info.value.status == 404

        server2 = serve_factory()
        # Journaling on: the incomplete journal was recovered at boot,
        # so it is either live or already done — but always known.
        status = client.get_json(server2.base_url, "/jobs/" + "7" * 16 + "-aa")
        assert status["job"] == "7" * 16 + "-aa"

        with pytest.raises(client.ServerError) as info:
            client.get_json(server2.base_url, "/jobs/NOT-A-JOB")
        assert info.value.status == 400


class TestHeartbeats:
    def test_idle_stream_emits_heartbeats_and_journals_none(
        self, serve_factory, gated_execute  # noqa: F811
    ):
        server = serve_factory(heartbeat_s=0.05)
        events = []
        stream = client.stream_submit(server.base_url, APP_REQUEST, timeout=120)
        for event in stream:
            events.append(event)
            beats = [e for e in events if e["event"] == "heartbeat"]
            if len(beats) >= 3:
                gated_execute["release"].set()
        kinds = [e["event"] for e in events]
        assert kinds.count("heartbeat") >= 3
        assert kinds[-1] == "done" and events[-1]["ok"] is True
        beat = next(e for e in events if e["event"] == "heartbeat")
        assert "seq" not in beat and beat["status"] in ("queued", "running")
        assert beat["last_seq"] >= 1

        job_id = events[0]["job"]
        records = _journal_store().read(job_id)
        journaled = [r["event"]["event"] for r in records if r.get("type") == "event"]
        assert "heartbeat" not in journaled
        assert journaled[-1] == "done"
        assert server.metrics()["serve.heartbeats"] >= 3


    def test_heartbeats_defeat_a_short_client_read_timeout(
        self, serve_factory, gated_execute  # noqa: F811
    ):
        # The job idles ~3x longer than the client's socket read
        # timeout; only the heartbeats keep the recv from timing out.
        server = serve_factory(heartbeat_s=0.2)
        releaser = threading.Timer(3.0, gated_execute["release"].set)
        releaser.start()
        try:
            events = list(
                client.stream_submit(server.base_url, APP_REQUEST, timeout=1.0)
            )
        finally:
            releaser.cancel()
            gated_execute["release"].set()
        assert events[-1]["event"] == "done" and events[-1]["ok"] is True
        assert any(e["event"] == "heartbeat" for e in events)


class TestChaosDrop:
    def test_dropped_stream_is_survived_by_resilient_client(
        self, serve_factory, tmp_path, monkeypatch
    ):
        spec = tmp_path / "chaos.json"
        chaos.write_spec(
            str(spec),
            str(tmp_path / "chaos-state"),
            [{"match": "serve.emit:result", "mode": "drop", "times": 1}],
        )
        monkeypatch.setenv(chaos.CHAOS_ENV, str(spec))
        server = serve_factory()

        sleeps = []
        events = list(
            client.stream_submit_resilient(
                server.base_url,
                APP_REQUEST,
                backoff_s=0.01,
                sleep=lambda s: sleeps.append(s) or time.sleep(s),
            )
        )
        assert len(sleeps) == 1, "exactly one reconnect"
        kinds = [e["event"] for e in events]
        assert kinds.count("accepted") == 2, "original accept + resumed accept"
        resumed = [e for e in events if e.get("resumed")]
        assert resumed and resumed[0]["after_seq"] >= 1
        seqs = [e["seq"] for e in events if "seq" in e]
        assert seqs == sorted(set(seqs)), "no duplicates after the resume"
        assert events[-1]["event"] == "done" and events[-1]["ok"] is True
        assert server.metrics()["serve.resumed_total"] == 1


class TestJournalOnCompletion:
    def test_completed_run_leaves_a_complete_contiguous_journal(self, serve_factory):
        server = serve_factory()
        events = list(client.stream_submit(server.base_url, APP_REQUEST, timeout=120))
        job_id = events[0]["job"]

        records = _journal_store().read(job_id)
        assert records[0]["type"] == "request"
        assert records[0]["kind"] == "app" and records[0]["job"] == job_id
        seqs = [r["seq"] for r in records if r.get("type") == "event"]
        assert seqs == list(range(1, len(seqs) + 1))
        summary = job_summary(records)
        assert summary["done"] is True and summary["ok"] is True
        # The journaled events are exactly the streamed ones (the
        # stream adds only the unjournaled accepted envelope).
        journaled = [r["event"] for r in records if r.get("type") == "event"]
        assert journaled == events[1:]

        stats = client.get_json(server.base_url, "/cache/stats")
        assert stats["jobs"]["journals"] >= 1
        assert stats["jobs"]["completed"] >= 1

    def test_no_journal_mode_runs_clean_without_a_jobs_dir(self, serve_factory):
        server = serve_factory(use_journal=False)
        events = list(client.stream_submit(server.base_url, APP_REQUEST, timeout=120))
        assert events[-1]["event"] == "done" and events[-1]["ok"] is True
        assert not (_journal_store().root).exists()
