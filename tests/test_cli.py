"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import main


class TestCLI:
    def test_app_command(self, capsys):
        assert main(["app", "database", "--pages", "4"]) == 0
        out = capsys.readouterr().out
        assert "speedup" in out
        assert "database" in out

    def test_synth_command(self, capsys):
        assert main(["synth"]) == 0
        out = capsys.readouterr().out
        assert "MPEG-MMX" in out
        assert "205" in out  # Matrix LEs

    def test_yield_command(self, capsys):
        assert main(["yield"]) == 0
        out = capsys.readouterr().out
        assert "radram" in out and "processor" in out

    def test_yield_defect_density_flag(self, capsys):
        assert main(["yield", "--defects", "0.2"]) == 0
        out = capsys.readouterr().out
        assert "dram" in out

    def test_power_command(self, capsys):
        assert main(["power"]) == 0
        out = capsys.readouterr().out
        assert "512" in out

    def test_trace_command(self, capsys):
        assert main(["trace", "matrix-simplex", "--pages", "4"]) == 0
        out = capsys.readouterr().out
        assert "page " in out and "processor" in out

    def test_report_only_subset(self, capsys):
        assert main(["report", "--quick", "--only", "table-3"]) == 0
        out = capsys.readouterr().out
        assert "table-3" in out

    def test_unknown_app_rejected(self):
        with pytest.raises(SystemExit):
            main(["app", "nonexistent"])

    def test_command_required(self):
        with pytest.raises(SystemExit):
            main([])
