"""Tests for the ``python -m repro`` command-line interface."""

import json

import pytest

from repro.__main__ import main


class TestCLI:
    def test_app_command(self, capsys):
        assert main(["app", "database", "--pages", "4"]) == 0
        out = capsys.readouterr().out
        assert "speedup" in out
        assert "database" in out

    def test_synth_command(self, capsys):
        assert main(["synth"]) == 0
        out = capsys.readouterr().out
        assert "MPEG-MMX" in out
        assert "205" in out  # Matrix LEs

    def test_yield_command(self, capsys):
        assert main(["yield"]) == 0
        out = capsys.readouterr().out
        assert "radram" in out and "processor" in out

    def test_yield_defect_density_flag(self, capsys):
        assert main(["yield", "--defects", "0.2"]) == 0
        out = capsys.readouterr().out
        assert "dram" in out

    def test_power_command(self, capsys):
        assert main(["power"]) == 0
        out = capsys.readouterr().out
        assert "512" in out

    def test_trace_command(self, capsys):
        assert main(["trace", "matrix-simplex", "--pages", "4"]) == 0
        out = capsys.readouterr().out
        assert "page " in out and "processor" in out

    def test_trace_reports_event_totals(self, capsys):
        assert main(["trace", "matrix-simplex", "--pages", "4"]) == 0
        out = capsys.readouterr().out
        assert "trace:" in out and "events" in out

    def test_trace_fig6_exports_perfetto_json(self, capsys, tmp_path):
        out_file = tmp_path / "trace.json"
        assert main(["trace", "fig6", "--out", str(out_file)]) == 0
        doc = json.loads(out_file.read_text())
        assert doc["traceEvents"]
        phases = {e["ph"] for e in doc["traceEvents"]}
        assert {"M", "X"} <= phases  # track metadata + spans
        names = {
            e["args"]["name"]
            for e in doc["traceEvents"]
            if e["ph"] == "M" and e["name"] == "thread_name"
        }
        assert "cpu" in names
        assert any(n.startswith("page/") for n in names)

    def test_trace_app_exports_json_and_csv(self, capsys, tmp_path):
        json_file = tmp_path / "t.json"
        csv_file = tmp_path / "t.csv"
        assert (
            main(
                [
                    "trace", "database", "--pages", "4",
                    "--out", str(json_file), "--csv", str(csv_file),
                ]
            )
            == 0
        )
        assert json.loads(json_file.read_text())["traceEvents"]
        lines = csv_file.read_text().splitlines()
        assert lines[0] == "ph,track,name,ts_ns,dur_ns,args"
        assert len(lines) > 1

    def test_trace_rejects_non_fig6_experiments(self, capsys):
        with pytest.raises(SystemExit):
            main(["trace", "fig3"])

    def test_report_only_subset(self, capsys):
        assert main(["report", "--quick", "--only", "table-3"]) == 0
        out = capsys.readouterr().out
        assert "table-3" in out

    def test_unknown_app_rejected(self):
        with pytest.raises(SystemExit):
            main(["app", "nonexistent"])

    def test_command_required(self):
        with pytest.raises(SystemExit):
            main([])


class TestSweepCLI:
    """The harness-facing surface: aliases, --jobs, --no-cache, cache."""

    def test_experiment_alias_runs_one_experiment(self, capsys):
        assert main(["table2"]) == 0
        out = capsys.readouterr().out
        assert "table-2" in out
        assert "figure-3" not in out

    def test_fig_alias_reports_harness_counters(self, capsys, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        assert main(["fig8", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "figure-8" in out
        assert "harness:" in out

    def test_no_cache_flag_leaves_no_cache_dir(self, capsys, monkeypatch, tmp_path):
        cache_dir = tmp_path / "cache"
        monkeypatch.setenv("REPRO_CACHE_DIR", str(cache_dir))
        assert main(["fig8", "--quick", "--no-cache"]) == 0
        assert not cache_dir.exists()

    def test_jobs_flag_accepted(self, capsys, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        assert main(["fig8", "--quick", "--jobs", "2"]) == 0
        out = capsys.readouterr().out
        assert "jobs=2" in out

    def test_trace_summary_flag_caches_trace_digests(
        self, capsys, monkeypatch, tmp_path
    ):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        assert main(["fig8", "--quick", "--trace-summary"]) == 0
        from repro.experiments import harness

        cache = harness.ResultCache(tmp_path / "cache")
        entries = cache.entries()
        assert entries
        payload = json.loads(entries[0].read_text())
        assert any(k.startswith("trace.") for k in payload["values"])

    def test_cache_info_and_clear(self, capsys, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        assert main(["fig8", "--quick"]) == 0
        capsys.readouterr()
        assert main(["cache"]) == 0
        out = capsys.readouterr().out
        assert "entries:" in out and "entries:   0" not in out
        assert main(["cache", "--clear"]) == 0
        capsys.readouterr()
        assert main(["cache"]) == 0
        assert "entries:   0" in capsys.readouterr().out

    def test_cache_stats_action(self, capsys, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        assert main(["fig8", "--quick"]) == 0
        capsys.readouterr()
        assert main(["cache", "stats"]) == 0
        out = capsys.readouterr().out
        assert "entries:" in out and "entries:   0" not in out
        assert "schema 3:" in out
        assert "oldest:" in out and "newest:" in out

    def test_cache_clear_action(self, capsys, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        assert main(["fig8", "--quick"]) == 0
        capsys.readouterr()
        assert main(["cache", "clear"]) == 0
        assert "removed" in capsys.readouterr().out
        assert main(["cache"]) == 0
        assert "entries:   0" in capsys.readouterr().out

    def test_cache_prune_action(self, capsys, monkeypatch, tmp_path):
        import os

        from repro.experiments import harness

        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        assert main(["fig8", "--quick"]) == 0
        capsys.readouterr()
        # Fresh entries survive a prune...
        assert main(["cache", "prune", "--days", "7"]) == 0
        assert "pruned 0 entries" in capsys.readouterr().out
        # ...but aged ones are dropped.
        cache = harness.ResultCache(tmp_path / "cache")
        for entry in cache.entries():
            old = os.path.getmtime(entry) - 8 * 86400
            os.utime(entry, (old, old))
        assert main(["cache", "prune", "--days", "7"]) == 0
        out = capsys.readouterr().out
        assert "pruned" in out and "pruned 0 entries" not in out
        assert main(["cache"]) == 0
        assert "entries:   0" in capsys.readouterr().out

    def test_submit_without_server_exits_seven(self, capsys):
        from repro.serve.client import EXIT_CONNECT

        # Port 9 (discard) is never a sweep server; connection fails fast.
        assert (
            main(
                ["submit", "health", "--base-url", "http://127.0.0.1:9"]
            )
            == EXIT_CONNECT
        )
        assert "cannot reach server" in capsys.readouterr().err
