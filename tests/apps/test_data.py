"""Unit + property tests for the synthetic workload generators."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.data import (
    RECORD_BYTES,
    RECORD_LAYOUT,
    SparseVectorPair,
    address_book,
    boeing_pairs,
    field_bytes,
    lcs_reference,
    median3x3_reference,
    mpeg_blocks,
    noisy_image,
    protein_sequence,
    related_sequences,
    simplex_pairs,
)


def lcs_bruteforce(a: bytes, b: bytes) -> int:
    table = [[0] * (len(b) + 1) for _ in range(len(a) + 1)]
    for i, ca in enumerate(a, 1):
        for j, cb in enumerate(b, 1):
            if ca == cb:
                table[i][j] = table[i - 1][j - 1] + 1
            else:
                table[i][j] = max(table[i - 1][j], table[i][j - 1])
    return table[-1][-1]


class TestAddressBook:
    def test_record_layout_fits(self):
        last = max(off + length for off, length in RECORD_LAYOUT.values())
        assert last <= RECORD_BYTES

    def test_deterministic_in_seed(self):
        assert np.array_equal(address_book(10, seed=3), address_book(10, seed=3))
        assert not np.array_equal(address_book(10, seed=3), address_book(10, seed=4))

    def test_names_are_ascii(self):
        records = address_book(20, seed=0)
        name = field_bytes(records[0], "lastname").rstrip(b"\x00")
        assert name.isalpha()

    def test_names_repeat_so_queries_match(self):
        records = address_book(500, seed=0)
        names = {field_bytes(r, "lastname") for r in records}
        assert len(names) < 500  # collisions exist


class TestImages:
    def test_median_removes_isolated_impulse(self):
        img = np.full((5, 5), 100, dtype=np.uint16)
        img[2, 2] = 4000
        out = median3x3_reference(img)
        assert out[2, 2] == 100

    def test_median_preserves_borders(self):
        img = noisy_image(8, 8, seed=1)
        out = median3x3_reference(img)
        assert np.array_equal(out[0], img[0])
        assert np.array_equal(out[:, -1], img[:, -1])

    def test_median_of_constant_is_constant(self):
        img = np.full((6, 7), 42, dtype=np.uint16)
        assert np.array_equal(median3x3_reference(img), img)

    @given(seed=st.integers(0, 100))
    @settings(max_examples=20, deadline=None)
    def test_median_matches_numpy_median(self, seed):
        rng = np.random.default_rng(seed)
        img = rng.integers(0, 4096, (7, 9)).astype(np.uint16)
        out = median3x3_reference(img)
        for i in range(1, 6):
            for j in range(1, 8):
                expected = np.median(img[i - 1 : i + 2, j - 1 : j + 2])
                assert out[i, j] == int(expected)


class TestSequences:
    def test_protein_alphabet(self):
        seq = protein_sequence(200, seed=0)
        assert set(seq) <= set(b"ACDEFGHIKLMNPQRSTVWY")

    def test_related_sequences_share_structure(self):
        a, b = related_sequences(100, seed=0)
        assert len(a) == len(b) == 100
        # Homologs: LCS much longer than for random pairs.
        assert lcs_reference(a, b) > 60

    @given(
        a=st.binary(min_size=0, max_size=24),
        b=st.binary(min_size=0, max_size=24),
    )
    @settings(max_examples=100, deadline=None)
    def test_lcs_reference_matches_bruteforce(self, a, b):
        assert lcs_reference(a, b) == lcs_bruteforce(a, b)

    def test_lcs_identical_sequences(self):
        s = protein_sequence(50, seed=1)
        assert lcs_reference(s, s) == 50


class TestSparsePairs:
    def test_simplex_density_is_constant(self):
        pairs = simplex_pairs(10, seed=0)
        sizes = {len(p.idx_a) for p in pairs}
        assert len(sizes) == 1

    def test_boeing_density_varies(self):
        pairs = boeing_pairs(20, seed=0)
        sizes = [len(p.idx_a) for p in pairs]
        assert max(sizes) > 1.5 * min(sizes)

    def test_simplex_matches_near_operating_point(self):
        pairs = simplex_pairs(20, seed=0)
        mean_m = np.mean([len(p.matches()) for p in pairs])
        assert 40 < mean_m < 80  # calibrated ~58

    def test_indices_sorted_and_unique(self):
        for p in simplex_pairs(3, seed=1) + boeing_pairs(3, seed=1):
            for idx in (p.idx_a, p.idx_b):
                assert np.all(np.diff(idx) > 0)

    def test_dot_matches_dense_computation(self):
        p = simplex_pairs(1, seed=5)[0]
        dense_a = np.zeros(10000)
        dense_b = np.zeros(10000)
        dense_a[p.idx_a] = p.val_a
        dense_b[p.idx_b] = p.val_b
        assert p.dot() == pytest.approx(float(dense_a @ dense_b))


class TestMpegBlocks:
    def test_shapes(self):
        frames, corrections = mpeg_blocks(10, seed=0)
        assert frames.shape == (10, 64)
        assert corrections.shape == (10, 64)

    def test_saturation_actually_occurs(self):
        # Some sums must exceed int16 so saturating != wrapping.
        frames, corrections = mpeg_blocks(100, seed=0)
        sums = frames.astype(np.int32) + corrections.astype(np.int32)
        assert np.any(sums > 32767) or np.any(sums < -32768)
