"""Structural and timing properties of the application op streams."""

import pytest

from repro.apps.base import PHASE_ACTIVATION, PHASE_POST
from repro.apps.registry import ALL_APPS, FIG3_APPS, TABLE4_APPS, get_app
from repro.experiments.runner import run_conventional, run_radram
from repro.sim import ops as O

PAGE = 16 * 1024

ALL_NAMES = sorted(ALL_APPS)


class TestStreamStructure:
    @pytest.mark.parametrize("name", ALL_NAMES)
    def test_phases_balance(self, name):
        app = get_app(name)
        w = app.workload(3, PAGE, functional=False)
        depth = 0
        for op in app.radram_stream(w):
            if isinstance(op, O.BeginPhase):
                depth += 1
            elif isinstance(op, O.EndPhase):
                depth -= 1
            assert depth >= 0
        assert depth == 0

    @pytest.mark.parametrize("name", ALL_NAMES)
    def test_every_activation_is_awaited(self, name):
        app = get_app(name)
        w = app.workload(3, PAGE, functional=False)
        activated, waited = set(), set()
        activations = 0
        for op in app.radram_stream(w):
            if isinstance(op, O.Activate):
                activated.add(op.page_no)
                activations += 1
            elif isinstance(op, O.WaitPage):
                waited.add(op.page_no)
        if name == "array-delete":
            pass  # sub-page fallback handled below; 3 pages activate
        assert activations >= 1
        assert activated <= waited

    @pytest.mark.parametrize("name", ALL_NAMES)
    def test_conventional_stream_has_no_active_page_ops(self, name):
        app = get_app(name)
        w = app.workload(2, PAGE, functional=False)
        for op in app.conventional_stream(w):
            assert not isinstance(op, (O.Activate, O.WaitPage, O.ServicePending))

    @pytest.mark.parametrize("name", TABLE4_APPS)
    def test_descriptor_words_match_declaration(self, name):
        app = get_app(name)
        w = app.workload(2, PAGE, functional=False)
        for op in app.radram_stream(w):
            if isinstance(op, O.Activate):
                assert op.descriptor_words == app.descriptor_words

    def test_streams_are_deterministic(self):
        app = get_app("database")
        w1 = app.workload(2, PAGE, functional=False, seed=7)
        w2 = app.workload(2, PAGE, functional=False, seed=7)
        assert list(app.conventional_stream(w1)) == list(app.conventional_stream(w2))


class TestTimingProperties:
    @pytest.mark.parametrize("name", FIG3_APPS)
    def test_radram_beats_conventional_at_scale(self, name):
        app = get_app(name)
        conv = run_conventional(app, 8, page_bytes=PAGE, cap_pages=None)
        rad = run_radram(app, 8, page_bytes=PAGE)
        assert conv.total_ns > rad.total_ns

    def test_conventional_cost_roughly_linear_in_pages(self):
        app = get_app("array-find")
        t4 = run_conventional(app, 4, page_bytes=PAGE, cap_pages=None).total_ns
        t8 = run_conventional(app, 8, page_bytes=PAGE, cap_pages=None).total_ns
        assert t8 / t4 == pytest.approx(2.0, rel=0.1)

    def test_subpage_delete_uses_processor(self):
        # The adaptive algorithm: sub-page deletes run conventionally,
        # so both systems take the same time.
        app = get_app("array-delete")
        conv = run_conventional(app, 0.5, page_bytes=PAGE, cap_pages=None)
        rad = run_radram(app, 0.5, page_bytes=PAGE)
        assert rad.total_ns == pytest.approx(conv.total_ns, rel=0.05)

    def test_activation_time_constant_per_page(self):
        # Section 2: "activation time is generally constant for each
        # page for a given function".
        app = get_app("database")
        r_small = run_radram(app, 4, page_bytes=PAGE)
        r_large = run_radram(app, 16, page_bytes=PAGE)
        ta_small = r_small.stats.phase_mean_ns(PHASE_ACTIVATION)
        ta_large = r_large.stats.phase_mean_ns(PHASE_ACTIVATION)
        assert ta_large == pytest.approx(ta_small, rel=0.02)

    def test_stall_fraction_falls_as_pages_grow(self):
        # Figure 4: saturating apps overlap completely at scale.
        app = get_app("matrix-simplex")
        small = run_radram(app, 2, page_bytes=PAGE)
        large = run_radram(app, 32, page_bytes=PAGE)
        assert large.stall_fraction < small.stall_fraction

    def test_mpeg_wide_instructions_fewer_activations(self):
        app = get_app("mpeg-mmx")
        r = run_radram(app, 4, page_bytes=PAGE)
        # One wide instruction per page, not one per 32-bit word.
        assert r.stats.activations == 4
