"""Tests for field-parameterized database queries."""

import pytest

from repro.apps.data import RECORD_LAYOUT
from repro.apps.database import DatabaseApp
from repro.experiments.runner import run_conventional, run_radram

PAGE = 64 * 1024


class TestSearchFields:
    @pytest.mark.parametrize("field", ["lastname", "firstname", "city", "zip"])
    def test_any_string_field_searchable(self, field):
        app = DatabaseApp(search_field=field)
        conv = run_conventional(app, 2, page_bytes=PAGE, functional=True, cap_pages=None)
        rad = run_radram(app, 2, page_bytes=PAGE, functional=True)
        app.check_equivalence(conv.workload, rad.workload)
        assert rad.workload.results["count"] >= 1

    def test_unknown_field_rejected(self):
        with pytest.raises(ValueError):
            DatabaseApp(search_field="shoe_size")

    def test_different_fields_give_different_counts(self):
        # A lastname query and a zip query over the same book find
        # different record sets (zips are near-unique, names repeat).
        name_app = DatabaseApp(search_field="lastname")
        zip_app = DatabaseApp(search_field="zip")
        name_run = run_radram(name_app, 4, page_bytes=PAGE, functional=True)
        zip_run = run_radram(zip_app, 4, page_bytes=PAGE, functional=True)
        assert name_run.workload.results["count"] >= zip_run.workload.results["count"]

    def test_shorter_fields_still_one_line_per_record(self):
        # The zip field (10 B) fits one cache line: the conventional
        # scan's miss count equals the record count either way.
        app = DatabaseApp(search_field="zip")
        conv = run_conventional(app, 1, page_bytes=PAGE, cap_pages=None)
        assert conv.total_ns > 0

    def test_default_registry_instance_uses_lastname(self):
        from repro.apps.registry import get_app

        assert get_app("database").search_field == "lastname"
