"""Property-based functional equivalence across random problem sizes.

The fixed-size equivalence tests pin typical shapes; these let
hypothesis choose fractional and awkward page counts and seeds, on the
apps whose page decomposition has boundary-carry logic (the likeliest
place for an off-by-one).
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.registry import get_app
from repro.experiments.runner import run_conventional, run_radram

PAGE = 8 * 1024

sizes = st.one_of(
    st.floats(min_value=0.1, max_value=0.95),  # sub-page
    st.integers(min_value=1, max_value=6).map(float),  # whole pages
    st.floats(min_value=1.1, max_value=5.9),  # partial last page
)


def check(name, n_pages, seed):
    app = get_app(name)
    conv = run_conventional(
        app, n_pages, page_bytes=PAGE, functional=True, seed=seed, cap_pages=None
    )
    rad = run_radram(app, n_pages, page_bytes=PAGE, functional=True, seed=seed)
    app.check_equivalence(conv.workload, rad.workload)


class TestEquivalenceProperties:
    @given(n_pages=sizes, seed=st.integers(0, 50))
    @settings(max_examples=25, deadline=None)
    def test_array_insert(self, n_pages, seed):
        check("array-insert", n_pages, seed)

    @given(n_pages=sizes, seed=st.integers(0, 50))
    @settings(max_examples=25, deadline=None)
    def test_array_delete(self, n_pages, seed):
        check("array-delete", n_pages, seed)

    @given(n_pages=sizes, seed=st.integers(0, 50))
    @settings(max_examples=20, deadline=None)
    def test_array_find(self, n_pages, seed):
        check("array-find", n_pages, seed)

    @given(n_pages=sizes, seed=st.integers(0, 50))
    @settings(max_examples=15, deadline=None)
    def test_median_band_halos(self, n_pages, seed):
        check("median-kernel", n_pages, seed)

    @given(n_pages=sizes, seed=st.integers(0, 50))
    @settings(max_examples=15, deadline=None)
    def test_database_blocks(self, n_pages, seed):
        check("database", n_pages, seed)

    @given(n_pages=sizes, seed=st.integers(0, 50))
    @settings(max_examples=10, deadline=None)
    def test_lcs_bands(self, n_pages, seed):
        check("dynamic-prog", n_pages, seed)
