"""Functional equivalence: conventional vs Active-Page versions.

The load-bearing integration tests of the repository: both versions of
every application run on real bytes and must produce identical results
— across whole-page, multi-page and fractional (sub-page) problem
sizes and several seeds.
"""

import numpy as np
import pytest

from repro.apps.registry import ALL_APPS, get_app
from repro.experiments.runner import run_conventional, run_radram

PAGE = 16 * 1024

ALL_NAMES = sorted(ALL_APPS)


def run_both(name, n_pages, seed=0, page_bytes=PAGE):
    app = get_app(name)
    conv = run_conventional(
        app, n_pages, page_bytes=page_bytes, functional=True, seed=seed, cap_pages=None
    )
    rad = run_radram(app, n_pages, page_bytes=page_bytes, functional=True, seed=seed)
    return app, conv, rad


class TestEquivalence:
    @pytest.mark.parametrize("name", ALL_NAMES)
    def test_single_page(self, name):
        app, conv, rad = run_both(name, 1)
        app.check_equivalence(conv.workload, rad.workload)

    @pytest.mark.parametrize("name", ALL_NAMES)
    def test_multi_page(self, name):
        app, conv, rad = run_both(name, 5)
        app.check_equivalence(conv.workload, rad.workload)

    @pytest.mark.parametrize("name", ALL_NAMES)
    def test_sub_page(self, name):
        app, conv, rad = run_both(name, 0.4)
        app.check_equivalence(conv.workload, rad.workload)

    @pytest.mark.parametrize("name", ALL_NAMES)
    @pytest.mark.parametrize("seed", [1, 2])
    def test_seeds(self, name, seed):
        app, conv, rad = run_both(name, 3, seed=seed)
        app.check_equivalence(conv.workload, rad.workload)

    @pytest.mark.parametrize("name", ["array-insert", "median-kernel", "database"])
    def test_larger_pages(self, name):
        app, conv, rad = run_both(name, 2, page_bytes=64 * 1024)
        app.check_equivalence(conv.workload, rad.workload)


class TestResultSanity:
    """The results are not just equal — they are *right*."""

    def test_array_insert_really_inserts(self):
        app, conv, rad = run_both("array-insert", 2)
        arr = rad.workload.results["array"]
        pos = rad.workload.data["position"]
        assert arr[pos] == app.VALUE
        initial = rad.workload.data["initial"]
        assert np.array_equal(arr[:pos], initial[:pos])
        assert np.array_equal(arr[pos + 1 :], initial[pos:-1])

    def test_array_delete_really_deletes(self):
        app, conv, rad = run_both("array-delete", 2)
        arr = rad.workload.results["array"]
        pos = rad.workload.data["position"]
        initial = rad.workload.data["initial"]
        assert np.array_equal(arr[:pos], initial[:pos])
        assert np.array_equal(arr[pos:-1], initial[pos + 1 :])
        assert arr[-1] == 0

    def test_array_find_counts_planted_keys(self):
        app, conv, rad = run_both("array-find", 2)
        w = rad.workload
        expected = int(np.count_nonzero(w.data["initial"] == w.data["key"]))
        assert w.results["count"] == expected
        assert expected > 0

    def test_database_count_positive(self):
        app, conv, rad = run_both("database", 2)
        assert rad.workload.results["count"] >= 1

    def test_median_matches_reference_filter(self):
        from repro.apps.data import median3x3_reference

        app, conv, rad = run_both("median-kernel", 3)
        expected = median3x3_reference(rad.workload.data["image"])
        assert np.array_equal(rad.workload.results["filtered"], expected)

    def test_lcs_length_is_plausible(self):
        app, conv, rad = run_both("dynamic-prog", 1)
        n = rad.workload.data["n"]
        lcs = rad.workload.results["lcs"]
        assert 0 < lcs <= n
        assert lcs > n // 2  # related sequences

    def test_matrix_dots_match_scipy(self):
        import scipy.sparse as sp

        app, conv, rad = run_both("matrix-simplex", 3)
        pairs = rad.workload.data["pairs"]
        dots = rad.workload.results["dots"]
        for pair, dot in zip(pairs, dots):
            size = 1 + int(max(pair.idx_a.max(), pair.idx_b.max()))
            va = sp.csr_matrix(
                (pair.val_a, (np.zeros(len(pair.idx_a), dtype=int), pair.idx_a)),
                shape=(1, size),
            )
            vb = sp.csr_matrix(
                (pair.val_b, (np.zeros(len(pair.idx_b), dtype=int), pair.idx_b)),
                shape=(1, size),
            )
            assert dot == pytest.approx((va @ vb.T)[0, 0])

    def test_mpeg_saturating_semantics(self):
        app, conv, rad = run_both("mpeg-mmx", 2)
        w = rad.workload
        exact = w.data["frames"].astype(np.int32) + w.data["corrections"].astype(
            np.int32
        )
        expected = np.clip(exact, -32768, 32767).astype(np.int16)
        assert np.array_equal(w.results["frames"], expected)
